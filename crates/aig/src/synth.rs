//! The scripted synthesis flow engine: a [`Pass`] trait, a [`Flow`] that
//! parses and runs `"b; rw; rf; b; rw -z; b"`-style scripts, and the
//! [`synthesize`] entry point (the default flow).
//!
//! Each pass proposes a functionally equivalent network; the flow engine
//! applies the pass's own accept criterion to the (depth, size) metrics
//! and keeps or discards the candidate. Every *accepted* pass goes
//! through one centralized soundness gate: in debug builds the candidate
//! is SAT-proven equivalent to its input
//! ([`crate::check::check_equivalence`]) and an unsound pass panics with
//! the counterexample instead of silently corrupting the network.
//! [`Flow::run_with_report`] additionally returns a [`FlowReport`] with
//! per-pass node/depth deltas and wall-clock timing.

use crate::balance::balance;
use crate::graph::Aig;
use crate::refactor::refactor;
use crate::rewrite::{rewrite_with, RewriteConfig};
use std::time::{Duration, Instant};

/// The default synthesis script: balance for depth, rewrite and refactor
/// for size, a zero-gain rewrite to perturb out of local minima, and a
/// final balance. This is the flow [`synthesize`] runs and the flow the
/// Table-1 drivers use unless overridden (`--flow` on the bench
/// binaries).
pub const DEFAULT_FLOW: &str = "b; rw; rf; b; rw -z; rf; b";

/// Network metrics a pass is judged on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Metrics {
    /// AND-node count (the synthesis cost metric).
    pub ands: usize,
    /// Logic depth in AND levels.
    pub depth: u32,
}

impl Metrics {
    /// Reads the metrics off a network.
    pub fn of(aig: &Aig) -> Self {
        Self {
            ands: aig.and_count(),
            depth: aig.depth(),
        }
    }
}

/// One synthesis pass: a transformation plus its accept criterion.
///
/// `apply` must return a functionally equivalent network (the flow
/// SAT-checks that in debug builds); `accept` decides whether the
/// candidate's metrics are an improvement worth keeping — the flow
/// discards rejected candidates, so a pass never needs to guard against
/// regressions itself.
pub trait Pass {
    /// Script token for reports and error messages (`"b"`, `"rw -z"`, …).
    fn name(&self) -> &'static str;
    /// Proposes a rewritten network.
    fn apply(&self, aig: &Aig) -> Aig;
    /// Whether the candidate should replace the current network.
    fn accept(&self, before: Metrics, after: Metrics) -> bool;
}

/// Delay-oriented AND-tree balancing (`b`).
pub struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &'static str {
        "b"
    }

    fn apply(&self, aig: &Aig) -> Aig {
        balance(aig)
    }

    /// Accepts when depth improves without an outsized size regression,
    /// or size shrinks at equal depth (ABC's aggregate script behavior).
    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        if after.depth < before.depth {
            after.ands <= before.ands + before.ands / 5
        } else {
            after.depth == before.depth && after.ands <= before.ands
        }
    }
}

/// DAG-aware NPN-class cut rewriting (`rw`, `rw -z`).
pub struct RewritePass {
    /// `-z`: accept zero-gain (structure-changing, size-neutral)
    /// replacements.
    pub zero_gain: bool,
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        if self.zero_gain {
            "rw -z"
        } else {
            "rw"
        }
    }

    fn apply(&self, aig: &Aig) -> Aig {
        rewrite_with(
            aig,
            &RewriteConfig {
                zero_gain: self.zero_gain,
                ..RewriteConfig::default()
            },
        )
    }

    /// `rw` must strictly shrink; `rw -z` may also hold size constant
    /// (that is its purpose — the structural perturbation pays off in a
    /// later pass). Either way depth may not regress by more than ~12 %:
    /// the synthesized network feeds a delay-objective mapper by
    /// default, and a large depth trade for a marginal size gain is a
    /// net loss there (balance cannot always recover it).
    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        let size_ok = if self.zero_gain {
            after.ands <= before.ands
        } else {
            after.ands < before.ands
        };
        size_ok && after.depth <= before.depth + before.depth / 8
    }
}

/// Cut-based SOP refactoring (`rf`).
pub struct RefactorPass;

impl Pass for RefactorPass {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn apply(&self, aig: &Aig) -> Aig {
        refactor(aig)
    }

    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        after.ands < before.ands
    }
}

/// A flow script failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The script contains no passes.
    Empty,
    /// An unrecognized pass token.
    UnknownPass(String),
    /// A flag the named pass does not take.
    UnknownFlag {
        /// The pass the flag was attached to.
        pass: String,
        /// The offending flag.
        flag: String,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Empty => write!(f, "empty flow script (expected e.g. \"{DEFAULT_FLOW}\")"),
            FlowError::UnknownPass(p) => {
                write!(f, "unknown pass `{p}` (expected b, rw, rw -z, or rf)")
            }
            FlowError::UnknownFlag { pass, flag } => {
                write!(f, "pass `{pass}` does not take flag `{flag}`")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// A parsed synthesis script: an ordered list of passes.
pub struct Flow {
    passes: Vec<Box<dyn Pass + Send + Sync>>,
}

impl Flow {
    /// Parses a flow script.
    ///
    /// Grammar: passes separated by `;` (empty segments are ignored, so
    /// trailing separators are fine). Each segment is a pass token plus
    /// optional flags, whitespace-separated:
    ///
    /// * `b` — balance;
    /// * `rw` — cut rewriting (`-z` accepts zero-gain replacements);
    /// * `rf` — SOP refactoring.
    ///
    /// # Errors
    ///
    /// [`FlowError`] on an empty script, unknown pass, or invalid flag.
    pub fn parse(script: &str) -> Result<Self, FlowError> {
        let mut passes: Vec<Box<dyn Pass + Send + Sync>> = Vec::new();
        for segment in script.split(';') {
            let mut tokens = segment.split_whitespace();
            let Some(name) = tokens.next() else {
                continue; // empty segment
            };
            let flags: Vec<&str> = tokens.collect();
            let reject_flags = |pass: &str| -> Result<(), FlowError> {
                match flags.first() {
                    Some(&flag) => Err(FlowError::UnknownFlag {
                        pass: pass.to_owned(),
                        flag: flag.to_owned(),
                    }),
                    None => Ok(()),
                }
            };
            match name {
                "b" | "balance" => {
                    reject_flags(name)?;
                    passes.push(Box::new(BalancePass));
                }
                "rf" | "refactor" => {
                    reject_flags(name)?;
                    passes.push(Box::new(RefactorPass));
                }
                "rw" | "rewrite" => {
                    let mut zero_gain = false;
                    for &flag in &flags {
                        if flag == "-z" {
                            zero_gain = true;
                        } else {
                            return Err(FlowError::UnknownFlag {
                                pass: name.to_owned(),
                                flag: flag.to_owned(),
                            });
                        }
                    }
                    passes.push(Box::new(RewritePass { zero_gain }));
                }
                other => return Err(FlowError::UnknownPass(other.to_owned())),
            }
        }
        if passes.is_empty() {
            return Err(FlowError::Empty);
        }
        Ok(Self { passes })
    }

    /// The parsed default flow ([`DEFAULT_FLOW`]).
    pub fn default_flow() -> Self {
        Self::parse(DEFAULT_FLOW).expect("the default flow parses")
    }

    /// Number of passes in the script.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the flow has no passes (unreachable through `parse`).
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Whether any pass is a rewrite (`rw` / `rw -z`) — drivers use this
    /// to decide whether warming the shared rewrite library is worth it.
    pub fn uses_rewrite(&self) -> bool {
        self.passes.iter().any(|p| p.name().starts_with("rw"))
    }

    /// The script tokens, re-serialized (`"b; rw; …"`).
    pub fn script(&self) -> String {
        self.passes
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Runs the flow: cleanup, then each pass in order under its accept
    /// criterion and the centralized debug SAT-soundness gate.
    pub fn run(&self, aig: &Aig) -> Aig {
        self.run_with_report(aig).0
    }

    /// Like [`Flow::run`], also returning the per-pass [`FlowReport`].
    pub fn run_with_report(&self, aig: &Aig) -> (Aig, FlowReport) {
        let started = Instant::now();
        let mut best = aig.cleanup();
        let initial = Metrics::of(&best);
        let mut reports = Vec::with_capacity(self.passes.len());
        for pass in &self.passes {
            let before = Metrics::of(&best);
            let t0 = Instant::now();
            let candidate = pass.apply(&best);
            let elapsed = t0.elapsed();
            let after = Metrics::of(&candidate);
            let accepted = pass.accept(before, after);
            if accepted {
                debug_assert_pass_sound(&best, &candidate, pass.name());
                best = candidate;
            }
            reports.push(PassReport {
                name: pass.name().to_owned(),
                accepted,
                before,
                after,
                elapsed,
            });
        }
        let report = FlowReport {
            initial,
            final_metrics: Metrics::of(&best),
            passes: reports,
            elapsed: started.elapsed(),
        };
        (best, report)
    }
}

impl std::fmt::Debug for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Flow({:?})", self.script())
    }
}

/// What one pass of a flow run did.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Script token of the pass.
    pub name: String,
    /// Whether the candidate was kept.
    pub accepted: bool,
    /// Metrics going in.
    pub before: Metrics,
    /// Metrics of the candidate (even when rejected).
    pub after: Metrics,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
}

/// Per-pass metrics and timing of one [`Flow`] run.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Metrics after the initial cleanup.
    pub initial: Metrics,
    /// Metrics of the returned network.
    pub final_metrics: Metrics,
    /// One entry per scripted pass, in order.
    pub passes: Vec<PassReport>,
    /// Total wall-clock time including cleanup and metric reads.
    pub elapsed: Duration,
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "flow: {} ands / depth {} -> {} ands / depth {} in {:.1?}",
            self.initial.ands,
            self.initial.depth,
            self.final_metrics.ands,
            self.final_metrics.depth,
            self.elapsed
        )?;
        for p in &self.passes {
            writeln!(
                f,
                "  {:<6} {:>5} -> {:>5} ands, depth {:>3} -> {:>3}  {:>9.1?}  {}",
                p.name,
                p.before.ands,
                p.after.ands,
                p.before.depth,
                p.after.depth,
                p.elapsed,
                if p.accepted { "accepted" } else { "rejected" },
            )?;
        }
        Ok(())
    }
}

/// Synthesizes an AIG by running the default flow ([`DEFAULT_FLOW`]):
/// `Flow::parse(DEFAULT_FLOW).run(aig)`.
///
/// In debug builds, every accepted pass is SAT-proven equivalent to its
/// input; an unsound pass panics with the counterexample pattern instead
/// of silently corrupting the network.
///
/// # Example
///
/// ```
/// use aig::{Aig, synthesize, equivalent};
///
/// let mut aig = Aig::new();
/// let xs: Vec<_> = (0..6).map(|_| aig.input()).collect();
/// let mut acc = xs[0];
/// for &x in &xs[1..] {
///     acc = aig.and(acc, x); // deliberately serial
/// }
/// aig.output(acc);
/// let opt = synthesize(&aig);
/// assert!(opt.depth() < aig.depth());
/// assert!(equivalent(&aig, &opt, 7, 32));
/// ```
pub fn synthesize(aig: &Aig) -> Aig {
    Flow::default_flow().run(aig)
}

/// The centralized debug-build soundness gate: an accepted pass must be
/// SAT-provably equivalent to its input. Compiled out of release builds.
fn debug_assert_pass_sound(before: &Aig, after: &Aig, pass: &str) {
    if cfg!(debug_assertions) {
        match crate::check::check_equivalence(before, after) {
            Ok(crate::check::Equivalence::Equal) => {}
            Ok(crate::check::Equivalence::Counterexample(cex)) => {
                panic!("{pass} changed the function; counterexample {cex:?}")
            }
            Err(e) => panic!("{pass} changed the interface: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;
    use crate::graph::Lit;

    #[test]
    fn synthesis_preserves_function() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..10).map(|_| aig.input()).collect();
        // Mix of structures: parity, majority-ish, chains.
        let parity = aig.xor_many(&xs[..6]);
        let mut chain = xs[6];
        for &x in &xs[7..] {
            chain = aig.or(chain, x);
        }
        let t1 = aig.and(xs[0], xs[5]);
        let mixed = aig.mux(parity, chain, t1);
        aig.output(parity);
        aig.output(chain);
        aig.output(mixed);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 0xA5, 64));
        assert!(opt.and_count() <= aig.and_count());
        assert!(opt.depth() <= aig.depth());
    }

    #[test]
    fn synthesis_never_grows() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        // Redundant logic: (a&b)|(a&!b) = a.
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, b.not());
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.output(g);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 77, 16));
        assert!(
            opt.and_count() < aig.and_count(),
            "redundancy should be removed: {} vs {}",
            opt.and_count(),
            aig.and_count()
        );
    }

    #[test]
    fn idempotent_fixpoint() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let f = aig.xor_many(&xs);
        aig.output(f);
        let once = synthesize(&aig);
        let twice = synthesize(&once);
        assert_eq!(once.and_count(), twice.and_count());
        assert_eq!(once.depth(), twice.depth());
    }

    #[test]
    fn default_flow_includes_rewrite() {
        let flow = Flow::default_flow();
        assert!(flow.uses_rewrite());
        assert!(flow.len() >= 3);
        assert_eq!(
            Flow::parse(&flow.script()).expect("round trip").script(),
            flow.script()
        );
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert_eq!(Flow::parse("").err(), Some(FlowError::Empty));
        assert_eq!(Flow::parse(" ;; ").err(), Some(FlowError::Empty));
        assert_eq!(
            Flow::parse("b; frobnicate").err(),
            Some(FlowError::UnknownPass("frobnicate".into()))
        );
        assert_eq!(
            Flow::parse("b -z").err(),
            Some(FlowError::UnknownFlag {
                pass: "b".into(),
                flag: "-z".into()
            })
        );
        assert_eq!(
            Flow::parse("rw -q").err(),
            Some(FlowError::UnknownFlag {
                pass: "rw".into(),
                flag: "-q".into()
            })
        );
    }

    #[test]
    fn parse_accepts_long_names_and_loose_separators() {
        let flow = Flow::parse("balance ; rewrite -z;; refactor;").expect("parses");
        assert_eq!(flow.script(), "b; rw -z; rf");
    }

    #[test]
    fn report_tracks_deltas_and_acceptance() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.output(acc);
        let flow = Flow::parse("b; rw").expect("parses");
        let (opt, report) = flow.run_with_report(&aig);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].name, "b");
        assert!(
            report.passes[0].accepted,
            "balancing a chain must be accepted"
        );
        assert!(report.passes[0].after.depth < report.passes[0].before.depth);
        assert_eq!(report.final_metrics, Metrics::of(&opt));
        assert_eq!(report.initial.ands, aig.and_count());
        // The display form renders one line per pass.
        let text = report.to_string();
        assert_eq!(text.lines().count(), 1 + report.passes.len());
    }
}
