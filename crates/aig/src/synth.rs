//! The scripted synthesis flow engine: a [`Pass`] trait, a [`Flow`] that
//! parses and runs `"b; rw; rf; b; rw -z; b; dch"`-style scripts, and
//! the [`synthesize`] entry point (the default flow).
//!
//! Each pass proposes a functionally equivalent network; the flow engine
//! applies the pass's own accept criterion to the (depth, size) metrics
//! and keeps or discards the candidate. Every *accepted* step goes
//! through one centralized soundness gate: in debug builds the candidate
//! is SAT-proven equivalent to its input
//! ([`crate::check::check_equivalence`]) and an unsound pass panics with
//! the counterexample instead of silently corrupting the network.
//! [`Flow::run_with_report`] additionally returns a [`FlowReport`] with
//! per-pass node/depth deltas and wall-clock timing.
//!
//! The `dch` step is the choice collector: the flow snapshots every
//! candidate network (accepted or rejected — each is an equivalent
//! structure), and `dch` fuses the accumulated snapshots into a
//! [`ChoiceAig`] (classes of SAT-proven-equivalent nodes linked into
//! choice rings) that [`Flow::run_with_choices`] hands back for
//! choice-aware mapping. As a plain network transformation `dch` is a
//! SAT sweep: the current network with every proven class collapsed onto
//! its representative.

use crate::balance::{balance, balance_core};
use crate::choice::ChoiceAig;
use crate::cuts::{CutConfig, CutDb};
use crate::graph::{Aig, Lit};
use crate::profile;
use crate::refactor::{refactor, refactor_core, REFACTOR_CUTS};
use crate::rewrite::{rewrite_clean, rewrite_with, RewriteConfig};
use std::time::{Duration, Instant};

/// The default synthesis script: balance for depth, rewrite and refactor
/// for size, a zero-gain rewrite to perturb out of local minima, and a
/// final balance. This is the flow [`synthesize`] runs and the flow the
/// Table-1 drivers use unless overridden (`--flow` on the bench
/// binaries).
pub const DEFAULT_FLOW: &str = "b; rw; rf; b; rw -z; rf; b";

/// Network metrics a pass is judged on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Metrics {
    /// AND-node count (the synthesis cost metric).
    pub ands: usize,
    /// Logic depth in AND levels.
    pub depth: u32,
}

impl Metrics {
    /// Reads the metrics off a network.
    pub fn of(aig: &Aig) -> Self {
        Self {
            ands: aig.and_count(),
            depth: aig.depth(),
        }
    }
}

/// The old-node → new-literal map a pass reports alongside its candidate
/// network: `None` entries are nodes the pass dropped.
pub type NodeMap = Vec<Option<Lit>>;

/// The persistent cut databases one [`Flow`] run owns and threads
/// through every step. Rewrite and refactor keep *separate* databases:
/// both enumerate 4-cuts, but with different priority caps (8 vs 6), and
/// the sets are not interchangeable — a fanin's stored cut-set size
/// feeds its consumers' merge pools, so truncating an 8-cut database
/// does not reproduce from-scratch 6-cut enumeration.
pub struct FlowCuts {
    /// k=4 / max_cuts=8 database the rewrite passes consume.
    pub rewrite: CutDb,
    /// k=4 / max_cuts=6 database the refactor pass consumes.
    pub refactor: CutDb,
}

impl FlowCuts {
    /// Fresh, empty databases.
    pub fn new() -> Self {
        Self {
            rewrite: CutDb::new(CutConfig {
                k: 4,
                max_cuts: RewriteConfig::default().max_cuts,
            }),
            refactor: CutDb::new(REFACTOR_CUTS),
        }
    }

    /// Re-keys both databases after an accepted step: translated through
    /// the pass's node map when one exists, dropped otherwise. Public so
    /// callers driving [`Pass::apply_incremental`] outside a [`Flow`]
    /// can keep the databases keyed to the network they accept.
    pub fn retarget(&mut self, old: &Aig, new: &Aig, map: Option<&NodeMap>) {
        match map {
            Some(map) => {
                self.rewrite.retarget(old, new, map);
                self.refactor.retarget(old, new, map);
            }
            None => {
                self.rewrite.reset();
                self.refactor.reset();
            }
        }
    }

    /// Cut reuse/compute totals summed over both databases.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.rewrite.reused() + self.refactor.reused(),
            self.rewrite.computed() + self.refactor.computed(),
        )
    }
}

impl Default for FlowCuts {
    fn default() -> Self {
        Self::new()
    }
}

/// One synthesis pass: a transformation plus its accept criterion.
///
/// `apply` must return a functionally equivalent network (the flow
/// SAT-checks that in debug builds); `accept` decides whether the
/// candidate's metrics are an improvement worth keeping — the flow
/// discards rejected candidates, so a pass never needs to guard against
/// regressions itself.
pub trait Pass {
    /// Script token for reports and error messages (`"b"`, `"rw -z"`, …).
    fn name(&self) -> &'static str;
    /// Proposes a rewritten network.
    fn apply(&self, aig: &Aig) -> Aig;
    /// Whether the candidate should replace the current network.
    fn accept(&self, before: Metrics, after: Metrics) -> bool;
    /// Proposes a rewritten network against the flow's persistent cut
    /// databases, additionally reporting the old-node → new-literal map
    /// so the flow can retarget the databases on acceptance. The default
    /// falls back to [`Pass::apply`] with no map (the databases are
    /// reset when such a step is accepted).
    fn apply_incremental(&self, aig: &Aig, cuts: &mut FlowCuts) -> (Aig, Option<NodeMap>) {
        let _ = cuts;
        (self.apply(aig), None)
    }
}

/// Delay-oriented AND-tree balancing (`b`).
pub struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &'static str {
        "b"
    }

    fn apply(&self, aig: &Aig) -> Aig {
        balance(aig)
    }

    /// Accepts when depth improves without an outsized size regression,
    /// or size shrinks at equal depth (ABC's aggregate script behavior).
    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        if after.depth < before.depth {
            after.ands <= before.ands + before.ands / 5
        } else {
            after.depth == before.depth && after.ands <= before.ands
        }
    }

    fn apply_incremental(&self, aig: &Aig, _cuts: &mut FlowCuts) -> (Aig, Option<NodeMap>) {
        let (out, map) = balance_core(aig);
        (out, Some(map))
    }
}

/// DAG-aware NPN-class cut rewriting (`rw`, `rw -z`, `rw -l`).
pub struct RewritePass {
    /// `-z`: accept zero-gain (structure-changing, size-neutral)
    /// replacements.
    pub zero_gain: bool,
    /// `-l`: depth-aware rewriting — candidates that would raise the cut
    /// root's level are rejected inside the pass, and the pass-level
    /// accept criterion tightens to "depth never grows".
    pub level_aware: bool,
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        match (self.zero_gain, self.level_aware) {
            (false, false) => "rw",
            (true, false) => "rw -z",
            (false, true) => "rw -l",
            (true, true) => "rw -z -l",
        }
    }

    fn apply(&self, aig: &Aig) -> Aig {
        rewrite_with(
            aig,
            &RewriteConfig {
                zero_gain: self.zero_gain,
                level_aware: self.level_aware,
                ..RewriteConfig::default()
            },
        )
    }

    /// `rw` must strictly shrink; `rw -z` may also hold size constant
    /// (that is its purpose — the structural perturbation pays off in a
    /// later pass). Depth may not regress by more than ~12 % — the
    /// synthesized network feeds a delay-objective mapper by default,
    /// and a large depth trade for a marginal size gain is a net loss
    /// there (balance cannot always recover it) — and in the
    /// depth-aware `-l` mode it may not regress at all, making `b` no
    /// longer the only depth lever in a script.
    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        let size_ok = if self.zero_gain {
            after.ands <= before.ands
        } else {
            after.ands < before.ands
        };
        let depth_cap = if self.level_aware {
            before.depth
        } else {
            before.depth + before.depth / 8
        };
        size_ok && after.depth <= depth_cap
    }

    fn apply_incremental(&self, aig: &Aig, cuts: &mut FlowCuts) -> (Aig, Option<NodeMap>) {
        let config = RewriteConfig {
            zero_gain: self.zero_gain,
            level_aware: self.level_aware,
            ..RewriteConfig::default()
        };
        let (out, map) = rewrite_clean(aig, &config, &mut cuts.rewrite);
        (out, Some(map))
    }
}

/// Cut-based SOP refactoring (`rf`).
pub struct RefactorPass;

impl Pass for RefactorPass {
    fn name(&self) -> &'static str {
        "rf"
    }

    fn apply(&self, aig: &Aig) -> Aig {
        refactor(aig)
    }

    fn accept(&self, before: Metrics, after: Metrics) -> bool {
        after.ands < before.ands
    }

    fn apply_incremental(&self, aig: &Aig, cuts: &mut FlowCuts) -> (Aig, Option<NodeMap>) {
        let (out, map) = refactor_core(aig, &mut cuts.refactor);
        (out, Some(map))
    }
}

/// A flow script failed to parse. Every variant that names a token also
/// carries `at`, the byte offset of that token in the script, so a typo
/// rows deep into a long script is pinpointed instead of merely blamed
/// on the whole string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The script contains no passes.
    Empty,
    /// An unrecognized pass token.
    UnknownPass {
        /// The offending token.
        pass: String,
        /// Byte offset of the token in the script.
        at: usize,
    },
    /// A flag the named pass does not take.
    UnknownFlag {
        /// The pass the flag was attached to.
        pass: String,
        /// The offending flag.
        flag: String,
        /// Byte offset of the flag in the script.
        at: usize,
    },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Empty => write!(f, "empty flow script (expected e.g. \"{DEFAULT_FLOW}\")"),
            FlowError::UnknownPass { pass, at } => {
                write!(
                    f,
                    "unknown pass `{pass}` at offset {at} (expected b, rw, rw -z, rw -l, rf, or dch)"
                )
            }
            FlowError::UnknownFlag { pass, flag, at } => {
                write!(
                    f,
                    "pass `{pass}` does not take flag `{flag}` (at offset {at})"
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// One step of a parsed flow: an ordinary network-to-network pass, or
/// the `dch` choice collector (which needs the flow's snapshot history,
/// not just the current network).
enum Step {
    Pass(Box<dyn Pass + Send + Sync>),
    Dch,
}

impl Step {
    fn name(&self) -> &'static str {
        match self {
            Step::Pass(p) => p.name(),
            Step::Dch => "dch",
        }
    }
}

/// A parsed synthesis script: an ordered list of steps.
pub struct Flow {
    steps: Vec<Step>,
}

/// Tokens of a segment with their byte offsets inside the segment
/// (whitespace-separated, ASCII whitespace).
fn tokens_with_offsets(segment: &str) -> Vec<(usize, &str)> {
    let bytes = segment.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push((start, &segment[start..i]));
    }
    out
}

impl Flow {
    /// Parses a flow script.
    ///
    /// Grammar: steps separated by `;` (empty segments are ignored, so
    /// trailing separators are fine). Each segment is a pass token plus
    /// optional flags, whitespace-separated:
    ///
    /// * `b` — balance;
    /// * `rw` — cut rewriting (`-z` accepts zero-gain replacements,
    ///   `-l` rejects candidates that raise the cut root's level);
    /// * `rf` — SOP refactoring;
    /// * `dch` — SAT sweep + choice collection over the snapshots
    ///   accumulated so far (see [`Flow::run_with_choices`]).
    ///
    /// # Errors
    ///
    /// [`FlowError`] on an empty script, unknown pass, or invalid flag —
    /// with the offending token and its byte offset in the script.
    pub fn parse(script: &str) -> Result<Self, FlowError> {
        let mut steps: Vec<Step> = Vec::new();
        let mut offset = 0usize;
        for segment in script.split(';') {
            let tokens = tokens_with_offsets(segment);
            let segment_offset = offset;
            offset += segment.len() + 1; // the consumed `;`
            let Some(&(name_at, name)) = tokens.first() else {
                continue; // empty segment
            };
            let name_at = segment_offset + name_at;
            let flags = &tokens[1..];
            let reject_flags = |pass: &str| -> Result<(), FlowError> {
                match flags.first() {
                    Some(&(at, flag)) => Err(FlowError::UnknownFlag {
                        pass: pass.to_owned(),
                        flag: flag.to_owned(),
                        at: segment_offset + at,
                    }),
                    None => Ok(()),
                }
            };
            match name {
                "b" | "balance" => {
                    reject_flags(name)?;
                    steps.push(Step::Pass(Box::new(BalancePass)));
                }
                "rf" | "refactor" => {
                    reject_flags(name)?;
                    steps.push(Step::Pass(Box::new(RefactorPass)));
                }
                "dch" => {
                    reject_flags(name)?;
                    steps.push(Step::Dch);
                }
                "rw" | "rewrite" => {
                    let mut zero_gain = false;
                    let mut level_aware = false;
                    for &(at, flag) in flags {
                        match flag {
                            "-z" => zero_gain = true,
                            "-l" => level_aware = true,
                            _ => {
                                return Err(FlowError::UnknownFlag {
                                    pass: name.to_owned(),
                                    flag: flag.to_owned(),
                                    at: segment_offset + at,
                                })
                            }
                        }
                    }
                    steps.push(Step::Pass(Box::new(RewritePass {
                        zero_gain,
                        level_aware,
                    })));
                }
                other => {
                    return Err(FlowError::UnknownPass {
                        pass: other.to_owned(),
                        at: name_at,
                    })
                }
            }
        }
        if steps.is_empty() {
            return Err(FlowError::Empty);
        }
        Ok(Self { steps })
    }

    /// The parsed default flow ([`DEFAULT_FLOW`]).
    pub fn default_flow() -> Self {
        Self::parse(DEFAULT_FLOW).expect("the default flow parses")
    }

    /// Number of steps in the script.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the flow has no steps (unreachable through `parse`).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether any pass is a rewrite (`rw` variants) — drivers use this
    /// to decide whether warming the shared rewrite library is worth it.
    pub fn uses_rewrite(&self) -> bool {
        self.steps.iter().any(|s| s.name().starts_with("rw"))
    }

    /// Whether the script contains a `dch` step, i.e. whether
    /// [`Flow::run_with_choices`] will return a [`ChoiceAig`].
    pub fn uses_choices(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, Step::Dch))
    }

    /// This flow with a trailing `dch` step appended when the script has
    /// none — how `--choices` upgrades a plain script.
    #[must_use]
    pub fn with_choices(mut self) -> Self {
        if !self.uses_choices() {
            self.steps.push(Step::Dch);
        }
        self
    }

    /// The script tokens, re-serialized (`"b; rw; …"`).
    pub fn script(&self) -> String {
        self.steps
            .iter()
            .map(Step::name)
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Runs the flow: cleanup, then each step in order under its accept
    /// criterion and the centralized debug SAT-soundness gate.
    pub fn run(&self, aig: &Aig) -> Aig {
        self.run_with_choices(aig).0
    }

    /// Like [`Flow::run`], also returning the per-step [`FlowReport`].
    pub fn run_with_report(&self, aig: &Aig) -> (Aig, FlowReport) {
        let (best, _, report) = self.run_with_choices(aig);
        (best, report)
    }

    /// Runs the flow and additionally returns the [`ChoiceAig`] built by
    /// the last `dch` step (`None` when the script has none).
    ///
    /// Every candidate network a pass proposes — accepted or rejected —
    /// is snapshotted; a `dch` step fuses the current network plus the
    /// accumulated snapshots (reverse-chronological, so representatives
    /// come from the most optimized structure) into a [`ChoiceAig`], and
    /// proposes the collapsed (SAT-swept) network as its own candidate.
    /// The collapse is rejected when it would make a primary output
    /// constant that was not structurally constant before — the mapper
    /// has no tie cells, so such a network cannot be mapped.
    pub fn run_with_choices(&self, aig: &Aig) -> (Aig, Option<ChoiceAig>, FlowReport) {
        let (best, choices, report, _) = self.run_full(aig);
        (best, choices, report)
    }

    /// Like [`Flow::run_with_report`], additionally returning the run's
    /// final [`FlowCuts`] databases, keyed to the returned network. This
    /// is the observability hook for the incremental-maintenance
    /// contract: `ensure` on the returned network must leave each
    /// database identical to from-scratch enumeration
    /// ([`crate::cuts::enumerate_cuts`]) at its configuration.
    pub fn run_with_cuts(&self, aig: &Aig) -> (Aig, FlowReport, FlowCuts) {
        let (best, _, report, cuts) = self.run_full(aig);
        (best, report, cuts)
    }

    fn run_full(&self, aig: &Aig) -> (Aig, Option<ChoiceAig>, FlowReport, FlowCuts) {
        let started = Instant::now();
        let flow_counters = profile::snapshot();
        let mut best = aig.cleanup();
        let initial = Metrics::of(&best);
        let mut snapshots: Vec<Aig> = vec![best.clone()];
        let mut choices: Option<ChoiceAig> = None;
        let mut cuts = FlowCuts::new();
        let mut reports = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let mut span = obs::span!("flow/{}", step.name());
            let before = Metrics::of(&best);
            let t0 = Instant::now();
            let counters = profile::snapshot();
            let is_dch = matches!(step, Step::Dch);
            let (candidate, node_map, after, accepted) = match step {
                Step::Pass(pass) => {
                    let (candidate, node_map) = pass.apply_incremental(&best, &mut cuts);
                    let after = Metrics::of(&candidate);
                    let accepted = pass.accept(before, after);
                    (candidate, node_map, after, accepted)
                }
                Step::Dch => {
                    // Snapshots in reverse-chronological order, current
                    // network first: its nodes become the class
                    // representatives and its outputs the functions.
                    let mut snaps: Vec<Aig> = vec![best.clone()];
                    snaps.extend(snapshots.iter().rev().cloned());
                    let choice =
                        ChoiceAig::build(&snaps).expect("flow snapshots share one interface");
                    let collapsed = choice.collapsed();
                    let after = Metrics::of(&collapsed);
                    let accepted = after.ands <= before.ands
                        && after.depth <= before.depth + before.depth / 8
                        && no_new_constant_outputs(&best, &collapsed);
                    choices = Some(choice);
                    (collapsed, None, after, accepted)
                }
            };
            let elapsed = t0.elapsed();
            if accepted {
                debug_assert_pass_sound(&best, &candidate, step.name());
                // The databases follow the accepted candidate: translated
                // through the pass's node map when it reported one,
                // dropped otherwise (balance-free steps like dch).
                cuts.retarget(&best, &candidate, node_map.as_ref());
                // Rejected pass candidates are still sound alternatives
                // worth snapshotting; accepted ones replace the network.
                snapshots.push(candidate.clone());
                best = candidate;
            } else if !is_dch {
                snapshots.push(candidate);
            }
            span.record("accepted", u64::from(accepted))
                .record("ands_before", before.ands as u64)
                .record("ands_after", after.ands as u64);
            reports.push(PassReport {
                name: step.name().to_owned(),
                accepted,
                before,
                after,
                elapsed,
                profile: profile::snapshot().delta_since(&counters),
            });
        }
        let (cuts_reused, cuts_computed) = cuts.stats();
        obs::counter("flow_cuts_reused_total").add(cuts_reused);
        obs::counter("flow_cuts_computed_total").add(cuts_computed);
        let report = FlowReport {
            initial,
            final_metrics: Metrics::of(&best),
            passes: reports,
            elapsed: started.elapsed(),
            profile: profile::snapshot().delta_since(&flow_counters),
            cuts_reused,
            cuts_computed,
        };
        (best, choices, report, cuts)
    }
}

/// Whether the collapse turned a live primary output into a structural
/// constant (the SAT sweep can *prove* an output constant; the mapper
/// cannot express that without tie cells, so the flow must not hand it
/// such a network).
fn no_new_constant_outputs(before: &Aig, after: &Aig) -> bool {
    before
        .output_lits()
        .iter()
        .zip(after.output_lits())
        .all(|(b, a)| a.node() != 0 || b.node() == 0)
}

impl std::fmt::Debug for Flow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Flow({:?})", self.script())
    }
}

/// What one pass of a flow run did.
#[derive(Clone, Debug)]
pub struct PassReport {
    /// Script token of the pass.
    pub name: String,
    /// Whether the candidate was kept.
    pub accepted: bool,
    /// Metrics going in.
    pub before: Metrics,
    /// Metrics of the candidate (even when rejected).
    pub after: Metrics,
    /// Wall-clock time the pass took.
    pub elapsed: Duration,
    /// Engine counter deltas attributed to this pass (cut reuse, SAT
    /// merges, simulation volume, parallel tasks). Deltas of the global
    /// counters, so concurrent flows in other threads can bleed in —
    /// treat as attribution, not accounting.
    pub profile: profile::Counters,
}

/// Per-pass metrics and timing of one [`Flow`] run.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Metrics after the initial cleanup.
    pub initial: Metrics,
    /// Metrics of the returned network.
    pub final_metrics: Metrics,
    /// One entry per scripted pass, in order.
    pub passes: Vec<PassReport>,
    /// Total wall-clock time including cleanup and metric reads.
    pub elapsed: Duration,
    /// Engine counter deltas over the whole run (see
    /// [`PassReport::profile`] for the per-pass attribution caveat).
    pub profile: profile::Counters,
    /// Cut sets served from this run's databases without recompute —
    /// exact (read off the run's own [`FlowCuts`], not the globals).
    pub cuts_reused: u64,
    /// Cut sets this run's databases enumerated — exact.
    pub cuts_computed: u64,
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "flow: {} ands / depth {} -> {} ands / depth {} in {:.1?}",
            self.initial.ands,
            self.initial.depth,
            self.final_metrics.ands,
            self.final_metrics.depth,
            self.elapsed
        )?;
        for p in &self.passes {
            writeln!(
                f,
                "  {:<6} {:>5} -> {:>5} ands, depth {:>3} -> {:>3}  {:>9.1?}  {}",
                p.name,
                p.before.ands,
                p.after.ands,
                p.before.depth,
                p.after.depth,
                p.elapsed,
                if p.accepted { "accepted" } else { "rejected" },
            )?;
        }
        writeln!(
            f,
            "  cuts: {} reused / {} computed; sat merges: {} ({} proven); sim words: {}",
            self.cuts_reused,
            self.cuts_computed,
            self.profile.sat_merge_calls,
            self.profile.sat_merge_proven,
            self.profile.sim_words,
        )?;
        Ok(())
    }
}

/// Synthesizes an AIG by running the default flow ([`DEFAULT_FLOW`]):
/// `Flow::parse(DEFAULT_FLOW).run(aig)`.
///
/// In debug builds, every accepted pass is SAT-proven equivalent to its
/// input; an unsound pass panics with the counterexample pattern instead
/// of silently corrupting the network.
///
/// # Example
///
/// ```
/// use aig::{Aig, synthesize, equivalent};
///
/// let mut aig = Aig::new();
/// let xs: Vec<_> = (0..6).map(|_| aig.input()).collect();
/// let mut acc = xs[0];
/// for &x in &xs[1..] {
///     acc = aig.and(acc, x); // deliberately serial
/// }
/// aig.output(acc);
/// let opt = synthesize(&aig);
/// assert!(opt.depth() < aig.depth());
/// assert!(equivalent(&aig, &opt, 7, 32));
/// ```
pub fn synthesize(aig: &Aig) -> Aig {
    Flow::default_flow().run(aig)
}

/// The centralized debug-build soundness gate: an accepted pass must be
/// SAT-provably equivalent to its input. Compiled out of release builds.
fn debug_assert_pass_sound(before: &Aig, after: &Aig, pass: &str) {
    if cfg!(debug_assertions) {
        match crate::check::check_equivalence(before, after) {
            Ok(crate::check::Equivalence::Equal) => {}
            Ok(crate::check::Equivalence::Counterexample(cex)) => {
                panic!("{pass} changed the function; counterexample {cex:?}")
            }
            Err(e) => panic!("{pass} changed the interface: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::equivalent;
    use crate::graph::Lit;

    #[test]
    fn synthesis_preserves_function() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..10).map(|_| aig.input()).collect();
        // Mix of structures: parity, majority-ish, chains.
        let parity = aig.xor_many(&xs[..6]);
        let mut chain = xs[6];
        for &x in &xs[7..] {
            chain = aig.or(chain, x);
        }
        let t1 = aig.and(xs[0], xs[5]);
        let mixed = aig.mux(parity, chain, t1);
        aig.output(parity);
        aig.output(chain);
        aig.output(mixed);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 0xA5, 64));
        assert!(opt.and_count() <= aig.and_count());
        assert!(opt.depth() <= aig.depth());
    }

    #[test]
    fn synthesis_never_grows() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        // Redundant logic: (a&b)|(a&!b) = a.
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, b.not());
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.output(g);
        let opt = synthesize(&aig);
        assert!(equivalent(&aig, &opt, 77, 16));
        assert!(
            opt.and_count() < aig.and_count(),
            "redundancy should be removed: {} vs {}",
            opt.and_count(),
            aig.and_count()
        );
    }

    #[test]
    fn idempotent_fixpoint() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let f = aig.xor_many(&xs);
        aig.output(f);
        let once = synthesize(&aig);
        let twice = synthesize(&once);
        assert_eq!(once.and_count(), twice.and_count());
        assert_eq!(once.depth(), twice.depth());
    }

    #[test]
    fn default_flow_includes_rewrite() {
        let flow = Flow::default_flow();
        assert!(flow.uses_rewrite());
        assert!(flow.len() >= 3);
        assert_eq!(
            Flow::parse(&flow.script()).expect("round trip").script(),
            flow.script()
        );
    }

    #[test]
    fn parse_rejects_malformed_scripts_with_spans() {
        assert_eq!(Flow::parse("").err(), Some(FlowError::Empty));
        assert_eq!(Flow::parse(" ;; ").err(), Some(FlowError::Empty));
        // The offending token and its byte offset are reported, not just
        // the whole script.
        assert_eq!(
            Flow::parse("b; frobnicate").err(),
            Some(FlowError::UnknownPass {
                pass: "frobnicate".into(),
                at: 3
            })
        );
        assert_eq!(
            Flow::parse("b; rw;  xyz; rf").err(),
            Some(FlowError::UnknownPass {
                pass: "xyz".into(),
                at: 8
            })
        );
        assert_eq!(
            Flow::parse("b -z").err(),
            Some(FlowError::UnknownFlag {
                pass: "b".into(),
                flag: "-z".into(),
                at: 2
            })
        );
        assert_eq!(
            Flow::parse("b; rw -q").err(),
            Some(FlowError::UnknownFlag {
                pass: "rw".into(),
                flag: "-q".into(),
                at: 6
            })
        );
        assert_eq!(
            Flow::parse("dch -z").err(),
            Some(FlowError::UnknownFlag {
                pass: "dch".into(),
                flag: "-z".into(),
                at: 4
            })
        );
        let err = Flow::parse("b; rw;  xyz; rf").unwrap_err();
        assert!(err.to_string().contains("`xyz` at offset 8"), "{err}");
    }

    #[test]
    fn parse_accepts_long_names_and_loose_separators() {
        let flow = Flow::parse("balance ; rewrite -z;; refactor; dch").expect("parses");
        assert_eq!(flow.script(), "b; rw -z; rf; dch");
        assert!(flow.uses_choices());
    }

    #[test]
    fn parse_accepts_depth_aware_rewriting() {
        let flow = Flow::parse("rw -l; rw -z -l; b").expect("parses");
        assert_eq!(flow.script(), "rw -l; rw -z -l; b");
        assert!(flow.uses_rewrite());
        assert!(!flow.uses_choices());
        // Round trip.
        assert_eq!(
            Flow::parse(&flow.script()).expect("round trip").script(),
            flow.script()
        );
    }

    #[test]
    fn with_choices_appends_one_dch_step() {
        let flow = Flow::parse("b; rw").expect("parses").with_choices();
        assert_eq!(flow.script(), "b; rw; dch");
        // Idempotent: a script that already collects choices is kept.
        let twice = flow.with_choices();
        assert_eq!(twice.script(), "b; rw; dch");
    }

    #[test]
    fn dch_step_collapses_and_returns_choices() {
        // Internal redundancy the strash cannot see: the sweep must
        // merge it, and the flow must hand back the choice network.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x1 = aig.xor(a, b);
        let t1 = aig.and(a.not(), b.not());
        let t2 = aig.and(a, b);
        let x2 = aig.or(t1, t2).not();
        let f = aig.and(x1, c);
        let g = aig.or(x2, c);
        aig.output(f);
        aig.output(g);
        let flow = Flow::parse("b; rw; dch").expect("parses");
        let (optimized, choices, report) = flow.run_with_choices(&aig);
        let choices = choices.expect("dch scripts return choices");
        assert!(equivalent(&aig, &optimized, 0x7C, 32));
        assert_eq!(
            crate::check::check_equivalence(&aig, &choices.collapsed()),
            Ok(crate::check::Equivalence::Equal)
        );
        assert!(choices.verify_acyclic());
        assert_eq!(report.passes.last().map(|p| p.name.as_str()), Some("dch"));
        // Scripts without dch return no choices and do no sweep work.
        let (_, none, _) = Flow::parse("b").expect("parses").run_with_choices(&aig);
        assert!(none.is_none());
    }

    #[test]
    fn report_tracks_deltas_and_acceptance() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..8).map(|_| aig.input()).collect();
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.output(acc);
        let flow = Flow::parse("b; rw").expect("parses");
        let (opt, report) = flow.run_with_report(&aig);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].name, "b");
        assert!(
            report.passes[0].accepted,
            "balancing a chain must be accepted"
        );
        assert!(report.passes[0].after.depth < report.passes[0].before.depth);
        assert_eq!(report.final_metrics, Metrics::of(&opt));
        assert_eq!(report.initial.ands, aig.and_count());
        // The display form renders one line per pass, plus a header and
        // the trailing profile-counter line.
        let text = report.to_string();
        assert_eq!(text.lines().count(), 1 + report.passes.len() + 1);
        assert!(text.contains("cuts:"), "{text}");
    }

    #[test]
    fn flow_reuses_cuts_across_passes() {
        // A multi-pass script over a network with stable cones must
        // serve a nonzero fraction of cut sets from the database.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..12).map(|_| aig.input()).collect();
        let parity = aig.xor_many(&xs[..8]);
        let conj = aig.and_many(&xs[4..]);
        let f = aig.mux(parity, conj, xs[0]);
        aig.output(parity);
        aig.output(conj);
        aig.output(f);
        let flow = Flow::default_flow();
        let (opt, report) = flow.run_with_report(&aig);
        assert!(equivalent(&aig, &opt, 0x51, 64));
        assert!(
            report.cuts_reused > 0,
            "the default flow must reuse cuts across passes: {} reused / {} computed",
            report.cuts_reused,
            report.cuts_computed
        );
        assert!(report.cuts_computed > 0);
    }
}
