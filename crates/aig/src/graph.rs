//! The and-inverter graph: nodes, literals, structural hashing, builders.
//!
//! The arena is stored struct-of-arrays: parallel `fanin0`/`fanin1`/
//! `level`/`refs` vectors instead of one `Vec<Node>`. The hot loops (cut
//! enumeration, rewriting, simulation, sweeping) stream over one or two
//! of these attributes at a time, so splitting them keeps cache lines
//! dense at the 100k–1M-node scale; levels and fanout reference counts
//! are maintained incrementally on construction, turning the repeated
//! O(n) recomputes the optimization passes used to do into slice reads.

use std::collections::HashMap;

/// A literal: an AIG node reference with a complement bit in bit 0.
///
/// `Lit(0)` is constant false, `Lit(1)` constant true.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: u32, complement: bool) -> Self {
        Lit((node << 1) | u32::from(complement))
    }

    /// The node this literal refers to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal (`!x`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// This literal with its complement bit forced off.
    pub fn regular(self) -> Self {
        Lit(self.0 & !1)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (always node 0).
    Const,
    /// Primary input (with its input ordinal).
    Input(u32),
    /// Two-input AND of two literals (ordered `a.0 <= b.0`).
    And(Lit, Lit),
}

/// `fanin0` marker for non-AND rows (the constant and primary inputs);
/// cannot collide with a literal because node indices are `< u32::MAX/2`.
const INPUT_MARK: u32 = u32::MAX;

/// A structurally hashed and-inverter graph (struct-of-arrays arena).
#[derive(Clone, Debug, Default)]
pub struct Aig {
    /// First fanin literal bits per node; [`INPUT_MARK`] for the constant
    /// and for primary inputs.
    fanin0: Vec<u32>,
    /// Second fanin literal bits per node; the input ordinal for primary
    /// inputs, unused for the constant.
    fanin1: Vec<u32>,
    /// Logic level (depth in AND nodes) per node, maintained on insert.
    level: Vec<u32>,
    /// Fanout reference count per node (AND fanin edges + output edges),
    /// maintained on insert.
    refs: Vec<u32>,
    /// Number of AND nodes.
    n_ands: usize,
    inputs: Vec<u32>,
    outputs: Vec<Lit>,
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// Creates an empty AIG (just the constant node).
    pub fn new() -> Self {
        Self {
            fanin0: vec![INPUT_MARK],
            fanin1: vec![INPUT_MARK],
            level: vec![0],
            refs: vec![0],
            n_ands: 0,
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Adds a primary input, returning its (positive) literal.
    pub fn input(&mut self) -> Lit {
        let idx = self.fanin0.len() as u32;
        self.fanin0.push(INPUT_MARK);
        self.fanin1.push(self.inputs.len() as u32);
        self.level.push(0);
        self.refs.push(0);
        self.inputs.push(idx);
        Lit::new(idx, false)
    }

    /// Registers `lit` as the next primary output.
    pub fn output(&mut self, lit: Lit) {
        debug_assert!((lit.node() as usize) < self.len(), "dangling literal");
        self.refs[lit.node() as usize] += 1;
        self.outputs.push(lit);
    }

    /// AND of two literals, with constant folding, trivial-case reduction
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if let Some(lit) = self.find_and(a, b) {
            return lit;
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let idx = self.fanin0.len() as u32;
        self.fanin0.push(x.0);
        self.fanin1.push(y.0);
        self.level
            .push(1 + self.level[x.node() as usize].max(self.level[y.node() as usize]));
        self.refs.push(0);
        self.refs[x.node() as usize] += 1;
        self.refs[y.node() as usize] += 1;
        self.n_ands += 1;
        self.strash.insert((x.0, y.0), idx);
        Lit::new(idx, false)
    }

    /// What [`Aig::and`] would return *without inserting a node*: the
    /// folded constant/trivial result, the structurally hashed existing
    /// node, or `None` when the AND would have to allocate. Lets callers
    /// (the rewriting engine's gain accounting) price a candidate
    /// subgraph against the strash before committing to build it.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        // Constant / trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.strash.get(&(x.0, y.0)).map(|&n| Lit::new(n, false))
    }

    /// OR via DeMorgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR built from three ANDs (the standard AIG decomposition).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.and(a, b.not());
        let ba = self.and(a.not(), b);
        self.or(ab, ba)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).not()
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and(sel, t);
        let se = self.and(sel.not(), e);
        self.or(st, se)
    }

    /// Conjunction of many literals (balanced).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [x] => *x,
            _ => {
                let mid = lits.len() / 2;
                let l = self.and_many(&lits[..mid]);
                let r = self.and_many(&lits[mid..]);
                self.and(l, r)
            }
        }
    }

    /// Disjunction of many literals (balanced).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inv: Vec<Lit> = lits.iter().map(|l| l.not()).collect();
        self.and_many(&inv).not()
    }

    /// XOR of many literals (balanced parity tree).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [x] => *x,
            _ => {
                let mid = lits.len() / 2;
                let l = self.xor_many(&lits[..mid]);
                let r = self.xor_many(&lits[mid..]);
                self.xor(l, r)
            }
        }
    }

    /// All nodes in index order (index 0 is the constant), synthesized
    /// on the fly from the struct-of-arrays columns.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = Node> + '_ {
        (0..self.len() as u32).map(|i| self.node(i))
    }

    /// Node accessor.
    pub fn node(&self, idx: u32) -> Node {
        let i = idx as usize;
        let f0 = self.fanin0[i];
        if f0 == INPUT_MARK {
            if i == 0 {
                Node::Const
            } else {
                Node::Input(self.fanin1[i])
            }
        } else {
            Node::And(Lit(f0), Lit(self.fanin1[i]))
        }
    }

    /// Whether two AIGs are structurally identical: same node arrays
    /// (fanins, input ordinals) and same output literals. This is
    /// bit-level identity, the relation the engine's parallel/serial
    /// determinism contract is stated in — far stronger than functional
    /// equivalence.
    pub fn same_structure(&self, other: &Aig) -> bool {
        self.fanin0 == other.fanin0 && self.fanin1 == other.fanin1 && self.outputs == other.outputs
    }

    /// Primary-input node indices, in input order.
    pub fn input_nodes(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary-output literals, in output order.
    pub fn output_lits(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND nodes (the synthesis cost metric).
    pub fn and_count(&self) -> usize {
        self.n_ands
    }

    /// Total node count including constant and inputs.
    pub fn len(&self) -> usize {
        self.fanin0.len()
    }

    /// Whether the AIG has no nodes besides the constant.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Logic level (depth in AND nodes) of every node, as an owned
    /// vector (compatibility accessor; prefer [`Aig::node_levels`]).
    pub fn levels(&self) -> Vec<u32> {
        self.level.clone()
    }

    /// Logic level of every node, borrowed from the arena — maintained
    /// incrementally on insert, so this is free.
    pub fn node_levels(&self) -> &[u32] {
        &self.level
    }

    /// Logic level of one node.
    pub fn level(&self, idx: u32) -> u32 {
        self.level[idx as usize]
    }

    /// AND-node indices grouped by logic level, ascending, index-ordered
    /// within a level. A node's fanins sit on strictly lower levels, so
    /// each group is an independently computable frontier — the unit the
    /// parallel hot loops (cut enumeration, rewrite scoring, sweeper
    /// resimulation) fan out over before committing serially in node
    /// order.
    pub fn and_level_groups(&self) -> Vec<Vec<u32>> {
        let mut by_level: Vec<Vec<u32>> = Vec::new();
        for (idx, node) in self.nodes().enumerate() {
            if matches!(node, Node::And(_, _)) {
                let l = self.level[idx] as usize;
                if by_level.len() <= l {
                    by_level.resize_with(l + 1, Vec::new);
                }
                by_level[l].push(idx as u32);
            }
        }
        by_level
    }

    /// Depth of the network: maximum level over outputs.
    pub fn depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|l| self.level[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count per node (edges from AND fanins and outputs), as an
    /// owned vector (compatibility accessor; prefer
    /// [`Aig::fanout_counts`]).
    pub fn fanouts(&self) -> Vec<u32> {
        self.refs.clone()
    }

    /// Fanout reference count per node, borrowed from the arena —
    /// maintained incrementally on insert, so this is free.
    pub fn fanout_counts(&self) -> &[u32] {
        &self.refs
    }

    /// Rebuilds the AIG keeping only logic reachable from the outputs
    /// (removes dangling nodes); input count and order are preserved.
    pub fn cleanup(&self) -> Aig {
        self.cleanup_with_map().0
    }

    /// [`Aig::cleanup`] that also returns the old-node → new-literal map
    /// (`None` for nodes the cleanup dropped). The map is what lets the
    /// incremental cut database ([`crate::cuts::CutDb`]) follow a pass
    /// through its internal cleanup instead of being invalidated by it.
    pub fn cleanup_with_map(&self) -> (Aig, Vec<Option<Lit>>) {
        let mut out = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; self.len()];
        map[0] = Some(Lit::FALSE);
        // Inputs must all exist in the copy, in order.
        for &i in &self.inputs {
            let lit = out.input();
            map[i as usize] = Some(lit);
        }
        // Mark reachable nodes.
        let mut needed = vec![false; self.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if needed[n as usize] {
                continue;
            }
            needed[n as usize] = true;
            if let Node::And(a, b) = self.node(n) {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        // Copy in topological (index) order.
        for i in 0..self.len() {
            if !needed[i] || map[i].is_some() {
                continue;
            }
            if let Node::And(a, b) = self.node(i as u32) {
                let la = map[a.node() as usize].expect("fanin precedes node");
                let lb = map[b.node() as usize].expect("fanin precedes node");
                let fa = if a.is_complement() { la.not() } else { la };
                let fb = if b.is_complement() { lb.not() } else { lb };
                map[i] = Some(out.and(fa, fb));
            }
        }
        for o in &self.outputs {
            let l = map[o.node() as usize].expect("outputs are reachable");
            out.output(if o.is_complement() { l.not() } else { l });
        }
        (out, map)
    }
}

/// Composes a total old-node → literal map with a second (possibly
/// partial) map over the intermediate graph: `result[i] = m2[m1[i]]`
/// with complement bits folded, `None` where the second map dropped the
/// node. This is how a pass chains its construction map with the map of
/// its trailing [`Aig::cleanup_with_map`].
pub fn compose_maps(m1: &[Lit], m2: &[Option<Lit>]) -> Vec<Option<Lit>> {
    m1.iter()
        .map(|l| m2[l.node() as usize].map(|t| if l.is_complement() { t.not() } else { t }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complement());
        assert_eq!((!l).node(), 5);
        assert!(!(!l).is_complement());
        assert_eq!(l.regular(), Lit::new(5, false));
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new();
        let a = aig.input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.not()), Lit::FALSE);
        assert_eq!(aig.and_count(), 0);
    }

    #[test]
    fn find_and_probes_without_inserting() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let before = aig.len();
        // Folding cases resolve without allocation.
        assert_eq!(aig.find_and(a, Lit::FALSE), Some(Lit::FALSE));
        assert_eq!(aig.find_and(Lit::TRUE, b), Some(b));
        assert_eq!(aig.find_and(a, a), Some(a));
        assert_eq!(aig.find_and(a, a.not()), Some(Lit::FALSE));
        // Hashed node found in either operand order; unknown pairs miss.
        assert_eq!(aig.find_and(a, b), Some(x));
        assert_eq!(aig.find_and(b, a), Some(x));
        assert_eq!(aig.find_and(a, b.not()), None);
        assert_eq!(aig.len(), before, "probing must not allocate");
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.and_count(), 1);
    }

    #[test]
    fn xor_uses_three_ands() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let _ = aig.xor(a, b);
        assert_eq!(aig.and_count(), 3);
    }

    #[test]
    fn depth_and_levels() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.output(abc);
        assert_eq!(aig.depth(), 2);
        let levels = aig.levels();
        assert_eq!(levels[ab.node() as usize], 1);
        assert_eq!(levels[abc.node() as usize], 2);
        // The borrowed view agrees with the owned copy.
        assert_eq!(aig.node_levels(), levels.as_slice());
        assert_eq!(aig.level(abc.node()), 2);
    }

    #[test]
    fn cleanup_drops_dangling() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let used = aig.and(a, b);
        let _dangling = aig.and(a, b.not());
        aig.output(used);
        assert_eq!(aig.and_count(), 2);
        let clean = aig.cleanup();
        assert_eq!(clean.and_count(), 1);
        assert_eq!(clean.input_count(), 2);
        assert_eq!(clean.output_count(), 1);
    }

    #[test]
    fn many_input_builders() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let all = aig.and_many(&xs);
        let any = aig.or_many(&xs);
        let parity = aig.xor_many(&xs);
        aig.output(all);
        aig.output(any);
        aig.output(parity);
        // Spot-check with simulation in sim.rs tests; here check structure.
        assert!(aig.and_count() >= 4 + 4 + 4 * 3);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        assert_eq!(aig.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn fanout_counts() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(x, a.not());
        aig.output(x);
        aig.output(y);
        let fan = aig.fanouts();
        assert_eq!(fan[a.node() as usize], 2);
        assert_eq!(fan[x.node() as usize], 2); // y + output
        assert_eq!(aig.fanout_counts(), fan.as_slice());
    }

    #[test]
    fn nodes_iterator_reconstructs_the_arena() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b.not());
        aig.output(x);
        let all: Vec<Node> = aig.nodes().collect();
        assert_eq!(all.len(), aig.len());
        assert_eq!(all[0], Node::Const);
        assert_eq!(all[1], Node::Input(0));
        assert_eq!(all[2], Node::Input(1));
        assert_eq!(all[3], Node::And(a, b.not()));
    }

    #[test]
    fn same_structure_is_bit_identity() {
        let build = |flip: bool| {
            let mut aig = Aig::new();
            let a = aig.input();
            let b = aig.input();
            let x = if flip {
                aig.and(a, b.not())
            } else {
                aig.and(a, b)
            };
            aig.output(x);
            aig
        };
        assert!(build(false).same_structure(&build(false)));
        assert!(!build(false).same_structure(&build(true)));
    }

    #[test]
    fn incremental_levels_match_recompute() {
        // Levels maintained on insert must equal a from-scratch pass.
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        let f = aig.xor_many(&xs);
        let g = aig.and_many(&xs);
        let h = aig.and(f, g.not());
        aig.output(h);
        let mut expect = vec![0u32; aig.len()];
        for (i, n) in aig.nodes().enumerate() {
            if let Node::And(a, b) = n {
                expect[i] = 1 + expect[a.node() as usize].max(expect[b.node() as usize]);
            }
        }
        assert_eq!(aig.node_levels(), expect.as_slice());
    }
}
