//! The and-inverter graph: nodes, literals, structural hashing, builders.

use std::collections::HashMap;

/// A literal: an AIG node reference with a complement bit in bit 0.
///
/// `Lit(0)` is constant false, `Lit(1)` constant true.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true.
    pub const TRUE: Lit = Lit(1);

    /// Builds a literal from a node index and complement flag.
    pub fn new(node: u32, complement: bool) -> Self {
        Lit((node << 1) | u32::from(complement))
    }

    /// The node this literal refers to.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal (`!x`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// This literal with its complement bit forced off.
    pub fn regular(self) -> Self {
        Lit(self.0 & !1)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (always node 0).
    Const,
    /// Primary input (with its input ordinal).
    Input(u32),
    /// Two-input AND of two literals (ordered `a.0 <= b.0`).
    And(Lit, Lit),
}

/// A structurally hashed and-inverter graph.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    inputs: Vec<u32>,
    outputs: Vec<Lit>,
    strash: HashMap<(u32, u32), u32>,
}

impl Aig {
    /// Creates an empty AIG (just the constant node).
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Adds a primary input, returning its (positive) literal.
    pub fn input(&mut self) -> Lit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(idx);
        Lit::new(idx, false)
    }

    /// Registers `lit` as the next primary output.
    pub fn output(&mut self, lit: Lit) {
        debug_assert!((lit.node() as usize) < self.nodes.len(), "dangling literal");
        self.outputs.push(lit);
    }

    /// AND of two literals, with constant folding, trivial-case reduction
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if let Some(lit) = self.find_and(a, b) {
            return lit;
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x.0, y.0), idx);
        Lit::new(idx, false)
    }

    /// What [`Aig::and`] would return *without inserting a node*: the
    /// folded constant/trivial result, the structurally hashed existing
    /// node, or `None` when the AND would have to allocate. Lets callers
    /// (the rewriting engine's gain accounting) price a candidate
    /// subgraph against the strash before committing to build it.
    pub fn find_and(&self, a: Lit, b: Lit) -> Option<Lit> {
        // Constant / trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == b.not() {
            return Some(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Some(b);
        }
        if b == Lit::TRUE || a == b {
            return Some(a);
        }
        let (x, y) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.strash.get(&(x.0, y.0)).map(|&n| Lit::new(n, false))
    }

    /// OR via DeMorgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.not(), b.not()).not()
    }

    /// XOR built from three ANDs (the standard AIG decomposition).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.and(a, b.not());
        let ba = self.and(a.not(), b);
        self.or(ab, ba)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        self.xor(a, b).not()
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and(sel, t);
        let se = self.and(sel.not(), e);
        self.or(st, se)
    }

    /// Conjunction of many literals (balanced).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [x] => *x,
            _ => {
                let mid = lits.len() / 2;
                let l = self.and_many(&lits[..mid]);
                let r = self.and_many(&lits[mid..]);
                self.and(l, r)
            }
        }
    }

    /// Disjunction of many literals (balanced).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inv: Vec<Lit> = lits.iter().map(|l| l.not()).collect();
        self.and_many(&inv).not()
    }

    /// XOR of many literals (balanced parity tree).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::FALSE,
            [x] => *x,
            _ => {
                let mid = lits.len() / 2;
                let l = self.xor_many(&lits[..mid]);
                let r = self.xor_many(&lits[mid..]);
                self.xor(l, r)
            }
        }
    }

    /// All nodes (index 0 is the constant).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node accessor.
    pub fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// Primary-input node indices, in input order.
    pub fn input_nodes(&self) -> &[u32] {
        &self.inputs
    }

    /// Primary-output literals, in output order.
    pub fn output_lits(&self) -> &[Lit] {
        &self.outputs
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND nodes (the synthesis cost metric).
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(_, _)))
            .count()
    }

    /// Total node count including constant and inputs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the AIG has no nodes besides the constant.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Logic level (depth in AND nodes) of every node.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::And(a, b) = n {
                level[i] = 1 + level[a.node() as usize].max(level[b.node() as usize]);
            }
        }
        level
    }

    /// Depth of the network: maximum level over outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|l| levels[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Fanout count per node (edges from AND fanins and outputs).
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fan = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let Node::And(a, b) = n {
                fan[a.node() as usize] += 1;
                fan[b.node() as usize] += 1;
            }
        }
        for o in &self.outputs {
            fan[o.node() as usize] += 1;
        }
        fan
    }

    /// Rebuilds the AIG keeping only logic reachable from the outputs
    /// (removes dangling nodes); input count and order are preserved.
    pub fn cleanup(&self) -> Aig {
        let mut out = Aig::new();
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        // Inputs must all exist in the copy, in order.
        for &i in &self.inputs {
            let lit = out.input();
            map[i as usize] = Some(lit);
        }
        // Mark reachable nodes.
        let mut needed = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if needed[n as usize] {
                continue;
            }
            needed[n as usize] = true;
            if let Node::And(a, b) = self.nodes[n as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        // Copy in topological (index) order.
        for (i, n) in self.nodes.iter().enumerate() {
            if !needed[i] || map[i].is_some() {
                continue;
            }
            if let Node::And(a, b) = n {
                let la = map[a.node() as usize].expect("fanin precedes node");
                let lb = map[b.node() as usize].expect("fanin precedes node");
                let fa = if a.is_complement() { la.not() } else { la };
                let fb = if b.is_complement() { lb.not() } else { lb };
                map[i] = Some(out.and(fa, fb));
            }
        }
        for o in &self.outputs {
            let l = map[o.node() as usize].expect("outputs are reachable");
            out.output(if o.is_complement() { l.not() } else { l });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let l = Lit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complement());
        assert_eq!((!l).node(), 5);
        assert!(!(!l).is_complement());
        assert_eq!(l.regular(), Lit::new(5, false));
    }

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new();
        let a = aig.input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.not()), Lit::FALSE);
        assert_eq!(aig.and_count(), 0);
    }

    #[test]
    fn find_and_probes_without_inserting() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let before = aig.len();
        // Folding cases resolve without allocation.
        assert_eq!(aig.find_and(a, Lit::FALSE), Some(Lit::FALSE));
        assert_eq!(aig.find_and(Lit::TRUE, b), Some(b));
        assert_eq!(aig.find_and(a, a), Some(a));
        assert_eq!(aig.find_and(a, a.not()), Some(Lit::FALSE));
        // Hashed node found in either operand order; unknown pairs miss.
        assert_eq!(aig.find_and(a, b), Some(x));
        assert_eq!(aig.find_and(b, a), Some(x));
        assert_eq!(aig.find_and(a, b.not()), None);
        assert_eq!(aig.len(), before, "probing must not allocate");
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.and_count(), 1);
    }

    #[test]
    fn xor_uses_three_ands() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let _ = aig.xor(a, b);
        assert_eq!(aig.and_count(), 3);
    }

    #[test]
    fn depth_and_levels() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.output(abc);
        assert_eq!(aig.depth(), 2);
        let levels = aig.levels();
        assert_eq!(levels[ab.node() as usize], 1);
        assert_eq!(levels[abc.node() as usize], 2);
    }

    #[test]
    fn cleanup_drops_dangling() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let used = aig.and(a, b);
        let _dangling = aig.and(a, b.not());
        aig.output(used);
        assert_eq!(aig.and_count(), 2);
        let clean = aig.cleanup();
        assert_eq!(clean.and_count(), 1);
        assert_eq!(clean.input_count(), 2);
        assert_eq!(clean.output_count(), 1);
    }

    #[test]
    fn many_input_builders() {
        let mut aig = Aig::new();
        let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
        let all = aig.and_many(&xs);
        let any = aig.or_many(&xs);
        let parity = aig.xor_many(&xs);
        aig.output(all);
        aig.output(any);
        aig.output(parity);
        // Spot-check with simulation in sim.rs tests; here check structure.
        assert!(aig.and_count() >= 4 + 4 + 4 * 3);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        assert_eq!(aig.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn fanout_counts() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(x, a.not());
        aig.output(x);
        aig.output(y);
        let fan = aig.fanouts();
        assert_eq!(fan[a.node() as usize], 2);
        assert_eq!(fan[x.node() as usize], 2); // y + output
    }
}
