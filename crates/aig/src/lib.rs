//! Structurally hashed and-inverter graphs (AIGs) with logic-synthesis
//! passes — the "ABC `resyn2rs`" substitute of the paper's §4 flow.
//!
//! The paper synthesizes benchmark circuits with ABC before technology
//! mapping. What mapping quality actually depends on is (a) a reasonably
//! compact multi-level network and (b) cut enumeration over it; this crate
//! provides both:
//!
//! * [`Aig`] — the network: constant node, primary inputs, two-input AND
//!   nodes with complemented edges, structural hashing and standard
//!   builders (`and`, `or`, `xor`, `mux`, adders via callers);
//! * [`balance()`](crate::balance::balance) — delay-oriented AND-tree
//!   rebalancing;
//! * [`refactor()`](crate::refactor::refactor) — cut-based resynthesis via
//!   irredundant SOPs, accepted only when it shrinks the network;
//! * [`rewrite()`](crate::rewrite::rewrite) — DAG-aware 4-cut rewriting
//!   against a precomputed per-NPN-class optimal-subgraph library with
//!   MFFC gain accounting (and a zero-gain `-z` mode);
//! * [`Flow`] — the scripted pass manager: parses
//!   `"b; rw; rf; b; rw -z; rf; b; dch"`-style scripts, applies per-pass
//!   accept criteria and the centralized debug SAT-soundness gate, and
//!   reports per-pass deltas and timing ([`synth::FlowReport`]);
//! * [`choice`] — the structural-choice subsystem: the `dch` flow step
//!   fuses the flow's snapshots into a [`ChoiceAig`] (SAT-proven
//!   equivalence classes linked into choice rings) over which the
//!   technology mapper can map;
//! * [`synthesize()`](crate::synth::synthesize) — the default flow
//!   ([`synth::DEFAULT_FLOW`]);
//! * [`sim`] — 64-way bit-parallel simulation;
//! * [`check`] — SAT-based combinational equivalence checking
//!   (simulation-filtered, closed by a CDCL proof over the Tseitin
//!   encoding from [`cnf`]) with concrete counterexamples.
//!
//! # Example
//!
//! ```
//! use aig::Aig;
//!
//! let mut aig = Aig::new();
//! let a = aig.input();
//! let b = aig.input();
//! let sum = aig.xor(a, b);
//! let carry = aig.and(a, b);
//! aig.output(sum);
//! aig.output(carry);
//! assert_eq!(aig.input_count(), 2);
//! assert!(aig.and_count() >= 4); // XOR costs 3 ANDs, carry 1
//! ```

pub mod aiger;
pub mod balance;
pub mod check;
pub mod choice;
pub mod cnf;
pub mod cuts;
pub mod graph;
pub mod profile;
pub mod refactor;
pub mod rewrite;
pub mod sim;
pub mod synth;

pub use aiger::{
    from_aiger_ascii, from_aiger_auto, from_aiger_binary, to_aiger_ascii, to_aiger_binary,
};
pub use balance::balance;
pub use check::{check_equivalence, equivalent, miter, Equivalence, ShapeMismatch};
pub use choice::{ChoiceAig, ChoiceConfig, ChoiceStats};
pub use cuts::{enumerate_cuts, enumerate_cuts_choice, Cut, CutConfig, CutDb, CutSource};
pub use graph::{Aig, Lit};
pub use refactor::refactor;
pub use rewrite::{rewrite, rewrite_with, RewriteConfig, RewriteLibrary};
pub use sim::{simulate64, simulate_wide, WideWord, WIDE_WORDS};
pub use synth::{synthesize, Flow, FlowCuts, FlowError, FlowReport, Metrics, Pass, DEFAULT_FLOW};
