//! Structural choices: equivalent network snapshots accumulated into one
//! arena, with functionally-equivalent nodes linked into *choice rings*
//! the technology mapper can map over (ABC `dch`-style).
//!
//! Every synthesis pass discards the losing structure; by the time the
//! mapper runs, it only ever sees one shape per function. A [`ChoiceAig`]
//! keeps the losers: the flow engine snapshots the network around each
//! pass, [`ChoiceAig::build`] imports every snapshot into one shared
//! structurally hashed arena and runs the same sim-signature + budgeted
//! incremental-SAT sweep as [`crate::check`] (fraig-style, phase-aware).
//! Nodes proven functionally equivalent form a class: the first-imported
//! member is the canonical *representative*, the rest are linked into the
//! representative's choice ring — each ring member is one alternative
//! AND-decomposition of the class over other classes, because the sweep
//! resolves every fanin to its representative before a node is created.
//!
//! An *acyclicity guard* keeps the class-level dependency graph a DAG:
//! a member is only linked when doing so cannot make two classes each
//! reachable from the other's alternatives (such a member is still
//! merged for sharing, just not offered as a mapping choice). That is
//! what lets [`ChoiceAig::class_order`] hand the mapper a topological
//! order in which every cut leaf's class is processed before its
//! consumers.
//!
//! Consumers:
//!
//! * [`crate::cuts::enumerate_cuts_choice`] — cut enumeration that walks
//!   the rings, so a cut of the representative may be rooted in any
//!   member's cone;
//! * `techmap::map_choice_aig` — mapping over the choices;
//! * [`ChoiceAig::collapsed`] — the representative-resolved network (a
//!   SAT sweep / fraig of the primary snapshot), which is what the `dch`
//!   flow step hands to non-choice consumers.

use crate::check::{ShapeMismatch, Sweeper};
use crate::graph::{Aig, Lit, Node};

/// Tunables for the choice sweep.
#[derive(Clone, Copy, Debug)]
pub struct ChoiceConfig {
    /// Initial random-simulation words seeding the candidate classes
    /// (64 patterns per word; refined by SAT counterexamples).
    pub sim_words: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ChoiceConfig {
    fn default() -> Self {
        Self {
            sim_words: 8,
            seed: 0x5EED_DC11,
        }
    }
}

/// What one choice build did (per-class/ring statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChoiceStats {
    /// Snapshots imported.
    pub snapshots: usize,
    /// AND nodes in the shared arena after the sweep.
    pub arena_ands: usize,
    /// Equivalence classes carrying at least one linked choice.
    pub classes_with_choices: usize,
    /// Linked ring members in total (alternatives beyond the reps).
    pub choices: usize,
    /// Largest ring (members excluding the representative).
    pub max_ring: usize,
    /// Nodes merged into a representative (linked or not).
    pub merged: usize,
    /// Proven merges *not* linked because linking would have made the
    /// class dependency graph cyclic.
    pub guard_rejected: usize,
}

/// Equivalent snapshots fused into one arena with choice rings.
///
/// The network's *function* is the first snapshot's (its outputs,
/// representative-resolved, are [`ChoiceAig::outputs`]); later snapshots
/// only contribute alternative structures. Build one with
/// [`ChoiceAig::build`] — typically via the `dch` flow step
/// ([`crate::Flow`]), which hands the accumulated snapshots in
/// reverse-chronological order so representatives come from the most
/// optimized network.
#[derive(Clone, Debug)]
pub struct ChoiceAig {
    /// The cleaned primary snapshot, as imported — the network a flow
    /// *without* the `dch` step would have produced. Kept so consumers
    /// can compare (or fall back) against the no-choice baseline.
    primary: Aig,
    /// The shared strashed arena. Every AND reads representative
    /// literals (see module docs); no outputs are registered on it.
    arena: Aig,
    /// Node → representative literal (identity for representatives).
    repr: Vec<Lit>,
    /// Representative node → linked ring members (non-representative
    /// AND nodes of the class), in import order.
    rings: Vec<Vec<u32>>,
    /// The primary snapshot's outputs, representative-resolved.
    outputs: Vec<Lit>,
    /// Representative AND nodes reachable from the outputs through any
    /// alternative's fanins, dependencies first.
    order: Vec<u32>,
    stats: ChoiceStats,
}

impl ChoiceAig {
    /// Builds the choice network from equivalent snapshots with default
    /// sweep settings. `snapshots[0]` is the primary network (defines
    /// the outputs and is imported first, so its nodes become the class
    /// representatives); order the rest however diversity dictates.
    ///
    /// Merges are SAT-proven, so an accidentally *in*equivalent snapshot
    /// cannot corrupt the function — its nodes simply never merge.
    ///
    /// # Errors
    ///
    /// [`ShapeMismatch`] when any snapshot's interface widths differ
    /// from the primary's.
    ///
    /// # Panics
    ///
    /// When `snapshots` is empty.
    pub fn build(snapshots: &[Aig]) -> Result<Self, ShapeMismatch> {
        Self::build_with(snapshots, &ChoiceConfig::default())
    }

    /// [`ChoiceAig::build`] with explicit sweep settings.
    ///
    /// # Errors
    ///
    /// As [`ChoiceAig::build`].
    pub fn build_with(snapshots: &[Aig], config: &ChoiceConfig) -> Result<Self, ShapeMismatch> {
        let primary = snapshots.first().expect("at least one snapshot");
        for other in &snapshots[1..] {
            if other.input_count() != primary.input_count()
                || other.output_count() != primary.output_count()
            {
                return Err(ShapeMismatch {
                    inputs: (primary.input_count(), other.input_count()),
                    outputs: (primary.output_count(), other.output_count()),
                });
            }
        }
        let mut sweeper = Sweeper::new(
            primary.input_count(),
            config.seed,
            config.sim_words.clamp(1, 64),
        );
        let primary = primary.cleanup();
        let outputs = sweeper.import(&primary);
        for snapshot in &snapshots[1..] {
            let _ = sweeper.import(&snapshot.cleanup());
        }
        let (arena, repr) = sweeper.into_parts();
        let (rings, mut stats) = link_rings(&arena, &repr);
        stats.snapshots = snapshots.len();
        stats.arena_ands = arena.and_count();
        let order = class_order(&arena, &repr, &rings, &outputs);
        Ok(Self {
            primary,
            arena,
            repr,
            rings,
            outputs,
            order,
            stats,
        })
    }

    /// The cleaned primary snapshot — the no-choice baseline network.
    pub fn primary(&self) -> &Aig {
        &self.primary
    }

    /// The shared arena (inputs in primary-snapshot order; no outputs
    /// registered — use [`ChoiceAig::outputs`]).
    pub fn arena(&self) -> &Aig {
        &self.arena
    }

    /// The primary snapshot's output literals, representative-resolved.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Resolves a literal through its representative.
    pub fn repr_of(&self, l: Lit) -> Lit {
        let r = self.repr[l.node() as usize];
        if l.is_complement() {
            r.not()
        } else {
            r
        }
    }

    /// The linked ring members of a representative (empty for non-reps
    /// and single-structure classes).
    pub fn ring(&self, rep: u32) -> &[u32] {
        self.rings
            .get(rep as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether ring member `m`'s positive output is the *complement* of
    /// its representative's positive output.
    pub fn member_phase(&self, m: u32) -> bool {
        self.repr[m as usize].is_complement()
    }

    /// All alternative AND-decompositions of the class of `rep`, as
    /// `(node, phase)` pairs — the representative itself first (phase
    /// false), then the ring members with their phase relative to the
    /// representative.
    pub fn alternatives(&self, rep: u32) -> impl Iterator<Item = (u32, bool)> + '_ {
        std::iter::once((rep, false))
            .chain(self.ring(rep).iter().map(|&m| (m, self.member_phase(m))))
    }

    /// Representative AND nodes reachable from the outputs through any
    /// alternative's fanins, dependencies first — the processing order
    /// for choice-aware cut enumeration and match selection.
    pub fn class_order(&self) -> &[u32] {
        &self.order
    }

    /// Build statistics (per-class/ring counts).
    pub fn stats(&self) -> ChoiceStats {
        self.stats
    }

    /// The representative-resolved network: the primary snapshot with
    /// every SAT-proven class merged onto one structure. This is a fraig
    /// of the primary snapshot — never larger, often smaller.
    pub fn collapsed(&self) -> Aig {
        let mut out = self.arena.clone();
        for &o in &self.outputs {
            out.output(o);
        }
        out.cleanup()
    }

    /// Exhaustively re-checks that the class-level dependency graph
    /// (every alternative of every class pointing at its fanin classes)
    /// is acyclic — the invariant the linking guard maintains and the
    /// mapper's topological order depends on. Verification hook.
    pub fn verify_acyclic(&self) -> bool {
        let n = self.arena.len();
        // 0 = unvisited, 1 = on the DFS path, 2 = done.
        let mut state = vec![0u8; n];
        for root in 0..n as u32 {
            if !self.is_class_rep(root) || state[root as usize] != 0 {
                continue;
            }
            // Iterative DFS with an explicit child cursor.
            let mut stack: Vec<(u32, Vec<u32>, usize)> = vec![(root, self.class_deps(root), 0)];
            state[root as usize] = 1;
            while let Some(top) = stack.last_mut() {
                let u = top.0;
                if top.2 >= top.1.len() {
                    state[u as usize] = 2;
                    stack.pop();
                    continue;
                }
                let v = top.1[top.2];
                top.2 += 1;
                match state[v as usize] {
                    0 => {
                        state[v as usize] = 1;
                        let deps = self.class_deps(v);
                        stack.push((v, deps, 0));
                    }
                    1 => return false, // back edge: a cycle
                    _ => {}
                }
            }
        }
        true
    }

    /// Whether `node` is the representative of an AND class.
    fn is_class_rep(&self, node: u32) -> bool {
        matches!(self.arena.node(node), Node::And(_, _))
            && self.repr[node as usize] == Lit::new(node, false)
    }

    /// The AND-class fanin dependencies of class `rep` across all of its
    /// alternatives.
    fn class_deps(&self, rep: u32) -> Vec<u32> {
        let mut deps = Vec::new();
        for (m, _) in self.alternatives(rep) {
            let Node::And(a, b) = self.arena.node(m) else {
                continue;
            };
            for f in [a.node(), b.node()] {
                if matches!(self.arena.node(f), Node::And(_, _)) && !deps.contains(&f) {
                    deps.push(f);
                }
            }
        }
        deps
    }
}

/// Walks the swept arena in creation order and links merged nodes into
/// their representative's ring, guarded so the class dependency graph
/// stays acyclic.
fn link_rings(arena: &Aig, repr: &[Lit]) -> (Vec<Vec<u32>>, ChoiceStats) {
    let n = arena.len();
    let mut rings: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Class dependency adjacency: class -> fanin classes contributed by
    // every linked alternative (the representative's own fanins
    // included).
    let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Timestamped DFS scratch: `mark[v] == stamp` means visited in the
    // current query, so the scratch never needs clearing.
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut stats = ChoiceStats::default();
    for idx in 0..n as u32 {
        let Node::And(a, b) = arena.node(idx) else {
            continue;
        };
        let (fa, fb) = (a.node(), b.node());
        if repr[idx as usize] == Lit::new(idx, false) {
            // A fresh representative. Its fanins are older nodes, and no
            // edge into this brand-new class exists yet, so recording its
            // own decomposition can never create a cycle.
            edges[idx as usize].push(fa);
            edges[idx as usize].push(fb);
            continue;
        }
        stats.merged += 1;
        let rep = repr[idx as usize].node();
        // Constant- and input-classes are never mapping roots; merged
        // nodes stay unlinked there (the merge itself still shares).
        if !matches!(arena.node(rep), Node::And(_, _)) {
            continue;
        }
        // The acyclicity guard: linking makes class `rep` depend on the
        // fanin classes; refuse when `rep` is already reachable from
        // either of them. One stamp serves both queries — nodes cleared
        // of reaching `rep` in the first search need no revisit.
        stamp += 1;
        if reaches(&edges, fa, rep, &mut mark, stamp) || reaches(&edges, fb, rep, &mut mark, stamp)
        {
            stats.guard_rejected += 1;
            continue;
        }
        rings[rep as usize].push(idx);
        edges[rep as usize].push(fa);
        edges[rep as usize].push(fb);
        stats.choices += 1;
    }
    for ring in &rings {
        if !ring.is_empty() {
            stats.classes_with_choices += 1;
            stats.max_ring = stats.max_ring.max(ring.len());
        }
    }
    (rings, stats)
}

/// Whether `target` is reachable from `from` over the class edges.
fn reaches(edges: &[Vec<u32>], from: u32, target: u32, mark: &mut [u32], stamp: u32) -> bool {
    if from == target {
        return true;
    }
    let mut stack = vec![from];
    while let Some(u) = stack.pop() {
        if mark[u as usize] == stamp {
            continue;
        }
        mark[u as usize] = stamp;
        for &v in &edges[u as usize] {
            if v == target {
                return true;
            }
            if mark[v as usize] != stamp {
                stack.push(v);
            }
        }
    }
    false
}

/// Topological order (dependencies first) over the representative AND
/// classes reachable from the outputs through any alternative's fanins.
fn class_order(arena: &Aig, repr: &[Lit], rings: &[Vec<u32>], outputs: &[Lit]) -> Vec<u32> {
    let n = arena.len();
    let mut state = vec![0u8; n]; // 0 unvisited, 1 on path, 2 done
    let mut order = Vec::new();
    let deps_of = |rep: u32| -> Vec<u32> {
        let mut deps = Vec::new();
        for m in std::iter::once(rep).chain(rings[rep as usize].iter().copied()) {
            let Node::And(a, b) = arena.node(m) else {
                continue;
            };
            for f in [a.node(), b.node()] {
                if matches!(arena.node(f), Node::And(_, _)) {
                    deps.push(f);
                }
            }
        }
        deps
    };
    for out in outputs {
        let root = out.node();
        if !matches!(arena.node(root), Node::And(_, _)) || state[root as usize] != 0 {
            continue;
        }
        debug_assert_eq!(
            repr[root as usize],
            Lit::new(root, false),
            "outputs are reps"
        );
        let mut stack: Vec<(u32, Vec<u32>, usize)> = vec![(root, deps_of(root), 0)];
        state[root as usize] = 1;
        while let Some(top) = stack.last_mut() {
            let u = top.0;
            if top.2 >= top.1.len() {
                state[u as usize] = 2;
                order.push(u);
                stack.pop();
                continue;
            }
            let v = top.1[top.2];
            top.2 += 1;
            match state[v as usize] {
                0 => {
                    state[v as usize] = 1;
                    let d = deps_of(v);
                    stack.push((v, d, 0));
                }
                1 => unreachable!("the linking guard keeps choice rings acyclic"),
                _ => {}
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_equivalence, Equivalence};

    /// Two structurally different XOR-rich networks of the same function.
    fn xor_pair() -> (Aig, Aig) {
        let build = |serial: bool| {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
            let f = if serial {
                let mut acc = xs[0];
                for &x in &xs[1..] {
                    acc = aig.xor(acc, x);
                }
                acc
            } else {
                aig.xor_many(&xs)
            };
            let g = aig.and(xs[0], xs[1]);
            aig.output(f);
            aig.output(g);
            aig
        };
        (build(false), build(true))
    }

    #[test]
    fn snapshots_merge_into_classes_with_rings() {
        let (primary, alt) = xor_pair();
        let choice = ChoiceAig::build(&[primary.clone(), alt]).expect("same interface");
        let stats = choice.stats();
        assert_eq!(stats.snapshots, 2);
        assert!(stats.merged > 0, "equivalent structures must merge");
        assert!(
            stats.choices > 0,
            "different decompositions must be linked as choices"
        );
        assert!(stats.classes_with_choices > 0);
        assert!(stats.max_ring >= 1);
        // The choice function is the primary snapshot's.
        assert_eq!(
            check_equivalence(&primary, &choice.collapsed()),
            Ok(Equivalence::Equal)
        );
    }

    #[test]
    fn collapsed_is_a_fraig_of_the_primary() {
        // Internal redundancy the strash cannot see: x ^ y built twice
        // with opposite operand phases.
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x1 = aig.xor(a, b);
        let t1 = aig.and(a.not(), b.not());
        let t2 = aig.and(a, b);
        let x2 = aig.or(t1, t2).not(); // xor again, different structure
        let f = aig.and(x1, x2);
        let g = aig.or(x1, x2);
        aig.output(f);
        aig.output(g);
        let choice = ChoiceAig::build(&[aig.clone()]).expect("one snapshot");
        let collapsed = choice.collapsed();
        assert_eq!(check_equivalence(&aig, &collapsed), Ok(Equivalence::Equal));
        assert!(
            collapsed.and_count() < aig.and_count(),
            "the sweep must merge the two XOR structures: {} vs {}",
            collapsed.and_count(),
            aig.and_count()
        );
    }

    #[test]
    fn class_order_is_topological_over_alternatives() {
        let (primary, alt) = xor_pair();
        let choice = ChoiceAig::build(&[primary, alt]).expect("same interface");
        let order = choice.class_order();
        assert!(!order.is_empty());
        let position: std::collections::HashMap<u32, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for (i, &rep) in order.iter().enumerate() {
            for (m, _) in choice.alternatives(rep) {
                let Node::And(a, b) = choice.arena().node(m) else {
                    continue;
                };
                for f in [a.node(), b.node()] {
                    if matches!(choice.arena().node(f), Node::And(_, _)) {
                        let fp = position
                            .get(&f)
                            .unwrap_or_else(|| panic!("dep class {f} of {rep} not in order"));
                        assert!(*fp < i, "class {f} must precede its consumer {rep}");
                    }
                }
            }
        }
    }

    #[test]
    fn rings_never_form_cycles() {
        // Stress the guard with many snapshots of reconvergent logic.
        let mut snapshots = Vec::new();
        for variant in 0..4u64 {
            let mut aig = Aig::new();
            let xs: Vec<Lit> = (0..5).map(|_| aig.input()).collect();
            let m = aig.mux(xs[0], xs[1], xs[2]);
            let p = if variant % 2 == 0 {
                aig.xor_many(&[m, xs[3], xs[4]])
            } else {
                let t = aig.xor(m, xs[3]);
                aig.xor(t, xs[4])
            };
            let q = if variant < 2 {
                aig.or(m, p)
            } else {
                aig.and(m.not(), p.not()).not()
            };
            aig.output(p);
            aig.output(q);
            snapshots.push(aig);
        }
        let choice = ChoiceAig::build(&snapshots).expect("same interface");
        assert!(choice.verify_acyclic(), "choice rings must stay acyclic");
        // And membership is consistent: ring members resolve to their rep.
        for &rep in choice.class_order() {
            for &m in choice.ring(rep) {
                assert_eq!(choice.repr_of(Lit::new(m, false)).node(), rep);
            }
        }
    }

    #[test]
    fn inequivalent_snapshot_cannot_corrupt_the_function() {
        let (primary, _) = xor_pair();
        // A same-shape but different function network.
        let mut wrong = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| wrong.input()).collect();
        let f = wrong.and_many(&xs);
        let g = wrong.or(xs[0], xs[1]);
        wrong.output(f);
        wrong.output(g);
        let choice = ChoiceAig::build(&[primary.clone(), wrong]).expect("same interface");
        // Merges are SAT-proven, so the collapsed network still computes
        // the primary's function.
        assert_eq!(
            check_equivalence(&primary, &choice.collapsed()),
            Ok(Equivalence::Equal)
        );
        assert!(choice.verify_acyclic());
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let (primary, _) = xor_pair();
        let mut narrow = Aig::new();
        let x = narrow.input();
        narrow.output(x);
        let err = ChoiceAig::build(&[primary, narrow]).expect_err("shapes differ");
        assert_eq!(err.inputs, (6, 1));
    }

    #[test]
    fn single_snapshot_has_no_choices_but_valid_order() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let ab = aig.and(a, b);
        let f = aig.and(ab, c);
        aig.output(f);
        let choice = ChoiceAig::build(&[aig]).expect("builds");
        assert_eq!(choice.stats().choices, 0);
        assert_eq!(choice.class_order().len(), 2);
        assert!(choice.verify_acyclic());
    }
}
