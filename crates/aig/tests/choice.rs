//! Integration tests of the choice subsystem: choice-augmented mapping
//! is SAT-proven (miter-UNSAT) equivalent to the reference netlist on
//! random AIGs, and choice rings never form cycles.
//!
//! `techmap`/`charlib` appear as dev-dependencies only (a dev-only
//! cycle, which cargo permits): proving the *mapping* over choices
//! correct requires the mapper and a characterized library.

use aig::{Aig, ChoiceAig, Flow, Lit};
use charlib::characterize_library;
use gate_lib::GateFamily;
use proptest::prelude::*;
use techmap::{map_choice_aig, verify_mapping, MapConfig};

#[derive(Clone, Debug)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, na, nb)| Op::And(a, b, na, nb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
    ]
}

fn random_aig(ops: &[Op], n_inputs: usize, n_outputs: usize) -> Aig {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs).map(|_| aig.input()).collect();
    for op in ops {
        let pick = |i: usize| nets[i % nets.len()];
        let f = match *op {
            Op::And(a, b, na, nb) => {
                let x = if na { pick(a).not() } else { pick(a) };
                let y = if nb { pick(b).not() } else { pick(b) };
                aig.and(x, y)
            }
            Op::Xor(a, b) => aig.xor(pick(a), pick(b)),
            Op::Mux(s, a, b) => aig.mux(pick(s), pick(a), pick(b)),
        };
        nets.push(f);
    }
    for k in 0..n_outputs {
        aig.output(nets[nets.len() - 1 - (k % nets.len().min(5))]);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The acceptance-criterion property: mapping over the choices a
    // flow accumulated is miter-UNSAT equivalent to the reference
    // netlist — `verify_mapping` *is* the `--verify sat` proof, run
    // against the ORIGINAL network, not the synthesized one.
    #[test]
    fn choice_augmented_mapping_is_sat_equivalent_to_the_reference(
        ops in prop::collection::vec(op_strategy(), 1..35),
    ) {
        let network = random_aig(&ops, 6, 3);
        let flow = Flow::parse("b; rw; rf; dch").expect("parses");
        let (_, choices, _) = flow.run_with_choices(&network);
        let choices = choices.expect("dch scripts return choices");
        prop_assert!(choices.verify_acyclic(), "rings must stay acyclic");
        let library = characterize_library(GateFamily::CntfetGeneralized);
        let config = MapConfig {
            use_choices: true,
            ..MapConfig::default()
        };
        match map_choice_aig(&choices, &library, &config) {
            Ok(mapped) => prop_assert!(
                verify_mapping(&network, &mapped, &library).is_ok(),
                "choice-mapped netlist must be SAT-equivalent to the reference"
            ),
            // The sweep can prove an output constant; the mapper has no
            // tie cells for that — the pipeline's portfolio falls back to
            // plain mapping in that case, so the error is legitimate here.
            Err(techmap::MapError::ConstantOutput { .. }) => {}
            Err(e) => prop_assert!(false, "choice mapping failed: {e}"),
        }
    }

    // Choice rings are acyclic for arbitrary snapshot sets, including
    // deliberately diverse ones (the same function synthesized through
    // different scripts).
    #[test]
    fn rings_never_form_cycles_across_flows(
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        let network = random_aig(&ops, 5, 3);
        let mut snapshots = vec![network.cleanup()];
        for script in ["b", "rw; rf", "b; rw -z; b", "rw -l"] {
            snapshots.push(Flow::parse(script).expect("parses").run(&network));
        }
        // Reverse so representatives come from the most-optimized form,
        // mirroring what the dch step does.
        snapshots.reverse();
        let choice = ChoiceAig::build(&snapshots).expect("same interface");
        prop_assert!(choice.verify_acyclic());
        // Every linked member belongs to the ring of its representative.
        for &rep in choice.class_order() {
            for &m in choice.ring(rep) {
                prop_assert_eq!(choice.repr_of(Lit::new(m, false)).node(), rep);
            }
        }
    }
}

/// The collapsed network the `dch` step proposes is itself SAT-proven
/// equivalent and never larger than the flow's own result.
#[test]
fn dch_collapse_is_proven_and_never_larger() {
    let ops: Vec<Op> = (0..40)
        .map(|i| match i % 3 {
            0 => Op::And(i, i * 7 + 3, i % 2 == 0, i % 5 == 0),
            1 => Op::Xor(i * 3 + 1, i + 11),
            _ => Op::Mux(i, i * 5 + 2, i * 11 + 4),
        })
        .collect();
    let network = random_aig(&ops, 7, 4);
    let plain = Flow::parse("b; rw; rf").expect("parses").run(&network);
    let (with_dch, choices, report) = Flow::parse("b; rw; rf; dch")
        .expect("parses")
        .run_with_choices(&network);
    assert!(choices.is_some());
    assert_eq!(
        aig::check_equivalence(&network, &with_dch),
        Ok(aig::Equivalence::Equal)
    );
    let dch_report = report
        .passes
        .iter()
        .find(|p| p.name == "dch")
        .expect("dch is reported");
    if dch_report.accepted {
        assert!(
            with_dch.and_count() <= plain.and_count(),
            "an accepted collapse must not grow the network: {} vs {}",
            with_dch.and_count(),
            plain.and_count()
        );
    }
}
