//! Integration tests of the scripted flow engine: grammar round trips,
//! fixpoint and no-growth guarantees, and — the load-bearing property —
//! that *arbitrary* generated flow scripts applied to random AIGs are
//! miter-UNSAT equivalent to their inputs (a SAT proof per case, not a
//! sample).

use aig::{check_equivalence, Aig, Equivalence, Flow, Lit, Metrics};
use proptest::prelude::*;

/// A messy deterministic network: xorshift-driven mix of AND/OR/XOR/MUX
/// over `n_inputs` with `n_ops` operations and up to 6 outputs.
fn messy_aig(seed: u64, n_inputs: usize, n_ops: usize) -> Aig {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs).map(|_| aig.input()).collect();
    let mut s = seed | 1;
    let mut rnd = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..n_ops {
        let a = nets[(rnd() as usize) % nets.len()];
        let b = nets[(rnd() as usize) % nets.len()];
        let f = match rnd() % 4 {
            0 => aig.and(a, b.not()),
            1 => aig.or(a, b),
            2 => aig.xor(a, b),
            _ => {
                let c = nets[(rnd() as usize) % nets.len()];
                aig.mux(a, b, c)
            }
        };
        nets.push(f);
    }
    for k in 0..nets.len().min(6) {
        aig.output(nets[nets.len() - 1 - k]);
    }
    aig
}

#[test]
fn synthesize_is_the_default_flow() {
    // The acceptance criterion: `synthesize(&aig)` must be
    // `Flow::parse(DEFAULT_FLOW).run(&aig)`, and the default flow
    // rewrites.
    let flow = Flow::parse(aig::DEFAULT_FLOW).expect("default flow parses");
    assert!(flow.uses_rewrite(), "the default flow must include rw");
    let network = messy_aig(0xD1CE, 8, 70);
    let via_synthesize = aig::synthesize(&network);
    let via_flow = flow.run(&network);
    assert_eq!(Metrics::of(&via_synthesize), Metrics::of(&via_flow));
    assert_eq!(
        check_equivalence(&via_synthesize, &via_flow),
        Ok(Equivalence::Equal)
    );
}

#[test]
fn rewrite_pass_never_grows_the_network() {
    for seed in [1u64, 7, 42, 0xBEEF, 0x1234_5678] {
        let network = messy_aig(seed, 7, 60);
        let cleaned = network.cleanup();
        let rewritten = aig::rewrite(&network);
        assert!(
            rewritten.and_count() <= cleaned.and_count(),
            "seed {seed:#x}: rw grew {} -> {}",
            cleaned.and_count(),
            rewritten.and_count()
        );
        let zero = aig::rewrite_with(
            &network,
            &aig::RewriteConfig {
                zero_gain: true,
                ..aig::RewriteConfig::default()
            },
        );
        assert!(
            zero.and_count() <= cleaned.and_count(),
            "seed {seed:#x}: rw -z grew {} -> {}",
            cleaned.and_count(),
            zero.and_count()
        );
    }
}

#[test]
fn default_flow_converges_to_a_fixpoint() {
    // One run need not be idempotent — `rw -z` deliberately perturbs the
    // structure, and a second run may cash that in — but iterating the
    // flow must reach a fixpoint quickly, monotonically in size.
    for seed in [3u64, 0xACE, 0xF00D] {
        let flow = Flow::default_flow();
        let mut current = flow.run(&messy_aig(seed, 8, 80));
        let mut metrics = Metrics::of(&current);
        let mut converged = false;
        for round in 0..6 {
            let next = flow.run(&current);
            let next_metrics = Metrics::of(&next);
            assert!(
                next_metrics.ands <= metrics.ands,
                "seed {seed:#x} round {round}: iterating the flow grew the network"
            );
            if next_metrics == metrics {
                converged = true;
                break;
            }
            current = next;
            metrics = next_metrics;
        }
        assert!(
            converged,
            "seed {seed:#x}: no fixpoint within 6 flow iterations (at {metrics:?})"
        );
    }
}

#[test]
fn flow_report_deltas_are_consistent() {
    let network = messy_aig(0xCAB, 8, 90);
    let (optimized, report) = Flow::default_flow().run_with_report(&network);
    assert_eq!(report.final_metrics, Metrics::of(&optimized));
    // Accepted passes chain: each accepted pass's `after` is the next
    // pass's `before`.
    let mut current = report.initial;
    for pass in &report.passes {
        assert_eq!(
            pass.before, current,
            "pass {} reads stale metrics",
            pass.name
        );
        if pass.accepted {
            current = pass.after;
        }
    }
    assert_eq!(current, report.final_metrics);
}

/// Strategy: one flow pass token.
fn pass_token() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("b"),
        Just("rw"),
        Just("rw -z"),
        Just("rw -l"),
        Just("rw -z -l"),
        Just("rf"),
        Just("dch"),
        Just("balance"),
        Just("rewrite -z"),
        Just("refactor"),
    ]
}

/// Strategy: a whole flow script (1..6 passes, `;`-joined).
fn flow_script() -> impl Strategy<Value = String> {
    prop::collection::vec(pass_token(), 1..6).prop_map(|tokens| tokens.join("; "))
}

#[derive(Clone, Debug)]
enum Op {
    And(usize, usize, bool, bool),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), any::<usize>(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, na, nb)| Op::And(a, b, na, nb)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| Op::Mux(s, a, b)),
    ]
}

fn random_aig(ops: &[Op], n_inputs: usize, n_outputs: usize) -> Aig {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs).map(|_| aig.input()).collect();
    for op in ops {
        let pick = |i: usize| nets[i % nets.len()];
        let f = match *op {
            Op::And(a, b, na, nb) => {
                let x = if na { pick(a).not() } else { pick(a) };
                let y = if nb { pick(b).not() } else { pick(b) };
                aig.and(x, y)
            }
            Op::Xor(a, b) => aig.xor(pick(a), pick(b)),
            Op::Mux(s, a, b) => aig.mux(pick(s), pick(a), pick(b)),
        };
        nets.push(f);
    }
    for k in 0..n_outputs {
        aig.output(nets[nets.len() - 1 - (k % nets.len().min(7))]);
    }
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arbitrary_flows_are_sat_proven_equivalent(
        script in flow_script(),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // Any grammatical flow script applied to any network must be
        // miter-UNSAT equivalent to its input.
        let network = random_aig(&ops, 6, 3);
        let flow = Flow::parse(&script).expect("generated scripts are grammatical");
        let optimized = flow.run(&network);
        prop_assert_eq!(
            check_equivalence(&network, &optimized),
            Ok(Equivalence::Equal),
            "flow {} broke the function", script
        );
        // Size is an invariant only for balance-free scripts: `b` may
        // accept up to 20 % growth in exchange for depth.
        if !flow.script().split("; ").any(|t| t == "b") {
            prop_assert!(optimized.and_count() <= network.and_count());
        }
    }

    #[test]
    fn incremental_cut_db_matches_from_scratch_enumeration(
        script in flow_script(),
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        // The incremental-maintenance contract: after an arbitrary flow
        // script — any mix of retargeted (b/rw/rf) and database-resetting
        // (dch) steps — topping the databases up on the final network
        // must reproduce from-scratch enumeration exactly, cut for cut,
        // in order. Retargeting may only keep what re-enumeration would
        // recompute.
        let network = random_aig(&ops, 6, 3);
        let flow = Flow::parse(&script).expect("generated scripts are grammatical");
        let (optimized, _report, cuts) = flow.run_with_cuts(&network);
        for mut db in [cuts.rewrite, cuts.refactor] {
            let config = db.config();
            db.ensure(&optimized);
            prop_assert_eq!(
                db.into_per_node(),
                aig::enumerate_cuts(&optimized, config),
                "flow {} left a {:?} database differing from scratch", script, config
            );
        }
    }

    #[test]
    fn flow_parsing_round_trips(scripts in prop::collection::vec(pass_token(), 1..8)) {
        let script = scripts.join(";");
        let flow = Flow::parse(&script).expect("grammatical");
        let reparsed = Flow::parse(&flow.script()).expect("serialized form parses");
        prop_assert_eq!(flow.script(), reparsed.script());
        prop_assert_eq!(flow.len(), scripts.len());
    }
}
