//! SPICE-deck export of library cells: renders a gate's transistor-level
//! netlist (the schematic of Fig. 3) as a `.subckt`, so the cells can be
//! inspected or re-simulated outside this workspace.
//!
//! Ambipolar devices print with an explicit polarity-gate terminal tied to
//! the configuring rail; transmission gates expand into their
//! opposite-polarity device pair exactly as in Fig. 2.

use gate_lib::{Gate, Literal, SpNetwork};
use std::fmt::Write as _;

/// Renders a cell as a SPICE subcircuit.
///
/// Terminals: `vdd vss` plus pins `a b c …` (and their dual-rail
/// complements `a_n b_n …` when the cell uses them) and output `y`.
pub fn gate_to_spice(gate: &Gate) -> String {
    let mut out = String::new();
    let pins: Vec<String> = (0..gate.n_inputs)
        .map(|v| ((b'a' + v as u8) as char).to_string())
        .collect();
    let _ = writeln!(
        out,
        "* {} — {} transistors, f = {}",
        gate.name,
        gate.transistor_count(),
        gate.function
    );
    let _ = writeln!(out, ".subckt {} vdd vss {} y", gate.name, pins.join(" "));
    let mut counter = 0usize;
    let mut internal = 0usize;
    // Core output node: `y` directly, or the inverter input.
    let core_out = if gate.output_inverter { "y_core" } else { "y" }.to_owned();
    emit_network(
        &mut out,
        &gate.pull_up,
        "vdd",
        &core_out,
        true,
        &mut counter,
        &mut internal,
    );
    emit_network(
        &mut out,
        &gate.pull_down,
        &core_out,
        "vss",
        false,
        &mut counter,
        &mut internal,
    );
    if gate.output_inverter {
        let _ = writeln!(out, "MP{counter} y {core_out} vdd vdd pfet");
        let _ = writeln!(out, "MN{} y {core_out} vss vss nfet", counter + 1);
    }
    let _ = writeln!(out, ".ends {}", gate.name);
    out
}

fn lit_node(lit: Literal) -> String {
    let name = (b'a' + lit.var) as char;
    if lit.positive {
        name.to_string()
    } else {
        format!("{name}_n")
    }
}

fn emit_network(
    out: &mut String,
    net: &SpNetwork,
    top: &str,
    bottom: &str,
    is_pull_up: bool,
    counter: &mut usize,
    internal: &mut usize,
) {
    match net {
        SpNetwork::Transistor { gate, polarity } => {
            let model = match polarity {
                device::Polarity::N => "nfet",
                device::Polarity::P => "pfet",
            };
            let bulk = if is_pull_up { "vdd" } else { "vss" };
            let _ = writeln!(
                out,
                "M{} {top} {} {bottom} {bulk} {model}",
                *counter,
                lit_node(*gate)
            );
            *counter += 1;
        }
        SpNetwork::TransmissionGate { a, b } => {
            // The complementary ambipolar pair of Fig. 2: polarity gates
            // carry `a`/`a'`, conventional gates `b`/`b'`.
            let _ = writeln!(
                out,
                "XA{} {top} {} {} {bottom} ambipolar ; PG={}",
                *counter,
                lit_node(*b),
                lit_node(*a),
                lit_node(*a)
            );
            let _ = writeln!(
                out,
                "XA{} {top} {} {} {bottom} ambipolar ; PG={}",
                *counter + 1,
                lit_node(b.complement()),
                lit_node(a.complement()),
                lit_node(a.complement())
            );
            *counter += 2;
        }
        SpNetwork::Series(xs) => {
            let mut upper = top.to_owned();
            for (i, x) in xs.iter().enumerate() {
                let lower = if i + 1 == xs.len() {
                    bottom.to_owned()
                } else {
                    *internal += 1;
                    format!("int{}", *internal)
                };
                emit_network(out, x, &upper, &lower, is_pull_up, counter, internal);
                upper = lower;
            }
        }
        SpNetwork::Parallel(xs) => {
            for x in xs {
                emit_network(out, x, top, bottom, is_pull_up, counter, internal);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gate_lib::{generate_library, GateFamily};

    #[test]
    fn nand2_deck_has_four_devices() {
        let lib = generate_library(GateFamily::Cmos);
        let nand = lib.iter().find(|g| g.name == "NAND2").expect("NAND2");
        let deck = gate_to_spice(nand);
        assert!(deck.contains(".subckt NAND2 vdd vss a b y"));
        assert_eq!(deck.matches("nfet").count(), 2);
        assert_eq!(deck.matches("pfet").count(), 2);
        assert!(deck.contains(".ends NAND2"));
    }

    #[test]
    fn gnand2_deck_expands_tgs() {
        let lib = generate_library(GateFamily::CntfetGeneralized);
        let gnand = lib.iter().find(|g| g.name == "GNAND2").expect("GNAND2");
        let deck = gate_to_spice(gnand);
        // 4 TGs (2 PU + 2 PD) × 2 devices each.
        assert_eq!(deck.matches("ambipolar").count(), 8);
        // Dual-rail complement nodes appear.
        assert!(deck.contains("a_n") || deck.contains("b_n"));
    }

    #[test]
    fn two_stage_cells_emit_the_inverter() {
        let lib = generate_library(GateFamily::Cmos);
        let and2 = lib.iter().find(|g| g.name == "AND2").expect("AND2");
        let deck = gate_to_spice(and2);
        assert!(deck.contains("y_core"), "core node present:\n{deck}");
        // 4 core + 2 inverter devices.
        let devices = deck.matches("nfet").count() + deck.matches("pfet").count();
        assert_eq!(devices, 6);
    }

    #[test]
    fn every_cell_exports_without_panic() {
        for family in GateFamily::ALL {
            for gate in generate_library(family) {
                let deck = gate_to_spice(&gate);
                assert!(deck.contains(&format!(".ends {}", gate.name)));
            }
        }
    }
}
