//! Canonical off-transistor patterns — the I_off pattern classification of
//! §3.2.
//!
//! For a given input vector, the non-driving network of a static gate is a
//! series/parallel arrangement of *off* transistors (on-transistors are
//! shorted out; off-transistors shorted by parallel on-paths disappear).
//! Distinct input vectors frequently reduce to the same arrangement — e.g.
//! a 3-input NOR with inputs `[1 1 0]` and `[1 0 1]` — so only the set of
//! distinct canonical patterns needs circuit simulation. Following the
//! paper, n- and p-type off devices of the same size are assumed to leak
//! equally, so a pattern abstracts device polarity away.

use std::collections::BTreeMap;
use std::fmt;

/// A canonical series/parallel pattern of off transistors.
///
/// Invariants (maintained by [`OffPattern::normalize`]): children of
/// `Series`/`Parallel` are sorted, contain at least two entries, and never
/// repeat the parent combinator.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OffPattern {
    /// A single off transistor.
    Device,
    /// Off sub-patterns in series.
    Series(Vec<OffPattern>),
    /// Off sub-patterns in parallel.
    Parallel(Vec<OffPattern>),
}

impl OffPattern {
    /// Builds a normalized series composition.
    pub fn series(children: impl IntoIterator<Item = OffPattern>) -> Self {
        OffPattern::Series(children.into_iter().collect()).normalize()
    }

    /// Builds a normalized parallel composition.
    pub fn parallel(children: impl IntoIterator<Item = OffPattern>) -> Self {
        OffPattern::Parallel(children.into_iter().collect()).normalize()
    }

    /// Canonicalizes: flattens nested same-kind combinators, unwraps
    /// single children, sorts commutative children.
    pub fn normalize(self) -> Self {
        match self {
            OffPattern::Device => OffPattern::Device,
            OffPattern::Series(children) => {
                let mut flat = Vec::new();
                for c in children {
                    match c.normalize() {
                        OffPattern::Series(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => panic!("empty series pattern"),
                    1 => flat.pop().expect("len checked"),
                    _ => {
                        flat.sort();
                        OffPattern::Series(flat)
                    }
                }
            }
            OffPattern::Parallel(children) => {
                let mut flat = Vec::new();
                for c in children {
                    match c.normalize() {
                        OffPattern::Parallel(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => panic!("empty parallel pattern"),
                    1 => flat.pop().expect("len checked"),
                    _ => {
                        flat.sort();
                        OffPattern::Parallel(flat)
                    }
                }
            }
        }
    }

    /// Number of off transistors in the pattern.
    pub fn device_count(&self) -> usize {
        match self {
            OffPattern::Device => 1,
            OffPattern::Series(xs) | OffPattern::Parallel(xs) => {
                xs.iter().map(OffPattern::device_count).sum()
            }
        }
    }

    /// Depth of the longest series chain (leakage suppression indicator).
    pub fn series_depth(&self) -> usize {
        match self {
            OffPattern::Device => 1,
            OffPattern::Series(xs) => xs.iter().map(OffPattern::series_depth).sum(),
            OffPattern::Parallel(xs) => xs.iter().map(OffPattern::series_depth).max().unwrap_or(1),
        }
    }
}

impl fmt::Display for OffPattern {
    /// Renders like `D`, `S(D,D)`, or `P(D,S(D,D))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffPattern::Device => f.write_str("D"),
            OffPattern::Series(xs) | OffPattern::Parallel(xs) => {
                f.write_str(if matches!(self, OffPattern::Series(_)) {
                    "S("
                } else {
                    "P("
                })?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// A census of distinct patterns with occurrence counts, used for the
/// paper's "26 distinct I_off patterns" observation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternCensus {
    counts: BTreeMap<OffPattern, usize>,
}

impl PatternCensus {
    /// An empty census.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one occurrence of `pattern`.
    pub fn record(&mut self, pattern: OffPattern) {
        *self.counts.entry(pattern).or_insert(0) += 1;
    }

    /// Number of distinct patterns observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates patterns with their occurrence counts, most common first.
    pub fn iter_by_frequency(&self) -> impl Iterator<Item = (&OffPattern, usize)> {
        let mut v: Vec<_> = self.counts.iter().map(|(p, &c)| (p, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_flattens_and_sorts() {
        let p1 = OffPattern::series([
            OffPattern::parallel([OffPattern::Device, OffPattern::Device]),
            OffPattern::Device,
        ]);
        let p2 = OffPattern::series([
            OffPattern::Device,
            OffPattern::parallel([OffPattern::Device, OffPattern::Device]),
        ]);
        assert_eq!(p1, p2, "series children are order-insensitive");
    }

    #[test]
    fn nested_same_kind_flattens() {
        let nested = OffPattern::Series(vec![
            OffPattern::Series(vec![OffPattern::Device, OffPattern::Device]),
            OffPattern::Device,
        ])
        .normalize();
        assert_eq!(
            nested,
            OffPattern::Series(vec![
                OffPattern::Device,
                OffPattern::Device,
                OffPattern::Device
            ])
        );
        assert_eq!(nested.series_depth(), 3);
    }

    #[test]
    fn single_child_unwraps() {
        let p = OffPattern::series([OffPattern::Device]);
        assert_eq!(p, OffPattern::Device);
    }

    #[test]
    fn counts_and_depths() {
        let p = OffPattern::parallel([
            OffPattern::series([OffPattern::Device, OffPattern::Device]),
            OffPattern::Device,
        ]);
        assert_eq!(p.device_count(), 3);
        assert_eq!(p.series_depth(), 2);
    }

    #[test]
    fn display_roundtrips_structure() {
        let p = OffPattern::parallel([
            OffPattern::Device,
            OffPattern::series([OffPattern::Device, OffPattern::Device]),
        ]);
        assert_eq!(p.to_string(), "P(D,S(D,D))");
        assert_eq!(OffPattern::Device.to_string(), "D");
    }

    #[test]
    fn census_counts() {
        let mut census = PatternCensus::new();
        census.record(OffPattern::Device);
        census.record(OffPattern::Device);
        census.record(OffPattern::series([OffPattern::Device, OffPattern::Device]));
        assert_eq!(census.distinct(), 2);
        let top = census.iter_by_frequency().next().expect("nonempty");
        assert_eq!(top.0, &OffPattern::Device);
        assert_eq!(top.1, 2);
    }
}
