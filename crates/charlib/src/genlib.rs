//! Export of characterized libraries in a genlib-style text format.
//!
//! The paper compiles `genlib` libraries for ABC's technology mapper from
//! the DATE'09 area/delay values. This module renders our characterized
//! libraries in the same spirit so the mapped netlists can be inspected
//! with familiar tooling conventions:
//!
//! ```text
//! GATE GNAND2  8.00  O=!((a^c)&(b^d));  PIN * INV 4.00 4.00 1.2 0.9 1.2 0.9
//! ```
//!
//! Area is in transistor counts, pin capacitance in attofarads, delays in
//! picoseconds (intrinsic block delay and per-fanout slope).

use crate::characterize::{CharacterizedGate, CharacterizedLibrary};
use logic::sop::{cover_to_string, isop};
use logic::TruthTable;
use std::fmt::Write as _;

/// Renders a single gate as a genlib line.
pub fn gate_to_genlib(gate: &CharacterizedGate) -> String {
    let f = gate.gate.function;
    let body = sop_text(f);
    let area = gate.gate.transistor_count();
    let cap_af = gate.avg_input_cap().value() * 1e18;
    let block_ps = gate.delay(device::Capacitance::new(0.0)).value() * 1e12;
    let slope_ps =
        (gate.fo3_delay().value() - gate.delay(device::Capacitance::new(0.0)).value()) * 1e12 / 3.0;
    // Phase: INV when the function is negative-unate in some input,
    // UNKNOWN otherwise — we print UNKNOWN uniformly, which every genlib
    // consumer accepts.
    format!(
        "GATE {:<12} {:>5.2}  O={};  PIN * UNKNOWN {:.2} {:.2} {:.3} {:.3} {:.3} {:.3}",
        gate.gate.name, area as f64, body, cap_af, cap_af, block_ps, slope_ps, block_ps, slope_ps
    )
}

fn sop_text(f: TruthTable) -> String {
    let cover = isop(f);
    cover_to_string(&cover)
}

/// Renders a whole library as genlib text.
///
/// # Example
///
/// ```
/// use charlib::{characterize_library, genlib::library_to_genlib};
/// use gate_lib::GateFamily;
///
/// let lib = characterize_library(GateFamily::Cmos);
/// let text = library_to_genlib(&lib);
/// assert!(text.lines().count() >= 14);
/// assert!(text.contains("GATE INV"));
/// ```
pub fn library_to_genlib(lib: &CharacterizedLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} library — {} cells, V_DD = {} V",
        lib.family,
        lib.gates.len(),
        lib.tech.vdd
    );
    for gate in &lib.gates {
        let _ = writeln!(out, "{}", gate_to_genlib(gate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize_library;
    use gate_lib::GateFamily;

    #[test]
    fn genlib_contains_every_cell() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let text = library_to_genlib(&lib);
        for gate in &lib.gates {
            assert!(
                text.contains(&format!("GATE {:<12}", gate.gate.name)),
                "missing {}",
                gate.gate.name
            );
        }
    }

    #[test]
    fn sop_text_matches_function() {
        let lib = characterize_library(GateFamily::Cmos);
        let nand = lib.find("NAND2").expect("NAND2");
        let line = gate_to_genlib(nand);
        assert!(
            line.contains("O=!a + !b") || line.contains("O=!b + !a"),
            "line: {line}"
        );
    }

    #[test]
    fn numbers_are_positive() {
        let lib = characterize_library(GateFamily::CntfetConventional);
        for gate in &lib.gates {
            let line = gate_to_genlib(gate);
            assert!(!line.contains("NaN"), "line: {line}");
            assert!(!line.contains("-"), "negative number in: {line}");
        }
    }
}
