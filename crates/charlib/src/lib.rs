//! Power characterization of logic-gate libraries — the paper's §3
//! methodology (Fig. 5 flow).
//!
//! For every gate in a library this crate computes the four power
//! components of eq. (1)–(5):
//!
//! * **P_D** — dynamic power `α·C·f·V²` from the activity factor and the
//!   fanout-3 load assumption;
//! * **P_SC** — short-circuit power, the `0.15·P_D` conjecture of Nose &
//!   Sakurai adopted by the paper;
//! * **P_S** — static (sub-threshold) power, input-vector dependent,
//!   computed with the **I_off pattern classification** of §3.2: every
//!   input vector maps to a canonical series/parallel pattern of
//!   off-transistors, only distinct patterns are simulated at circuit
//!   level ([`spice_lite`]), and per-gate leakage is the average over
//!   vectors;
//! * **P_G** — gate-tunnelling power, evaluated with the same
//!   pattern-based machinery.
//!
//! # Example
//!
//! ```
//! use charlib::characterize_library;
//! use gate_lib::GateFamily;
//!
//! let lib = characterize_library(GateFamily::CntfetGeneralized);
//! let inv = lib.find("INV").expect("INV exists");
//! // Static power is orders of magnitude below dynamic power at 1 GHz.
//! let p = inv.power_summary();
//! assert!(p.dynamic.value() > 10.0 * p.static_sub.value());
//! ```

pub mod characterize;
pub mod genlib;
pub mod leakage;
pub mod pattern;
pub mod spice_export;
pub mod topology;

pub use characterize::{
    characterize_library, CharacterizedGate, CharacterizedLibrary, PowerSummary,
};
pub use leakage::LeakageSimulator;
pub use pattern::OffPattern;
pub use spice_export::gate_to_spice;
pub use topology::{gate_off_patterns, on_device_count};

/// Operating frequency assumed throughout the paper's evaluation (1 GHz).
pub const OPERATING_FREQUENCY_HZ: f64 = 1.0e9;

/// Fanout assumed for gate-level load capacitance (paper §4).
pub const FANOUT: usize = 3;

/// The short-circuit conjecture P_SC ≈ 0.15 · P_D (Nose & Sakurai).
pub const SHORT_CIRCUIT_FRACTION: f64 = 0.15;
