//! The gate topology analyzer of Fig. 5: maps every input vector of a gate
//! onto its off-current pattern and counts conducting devices.
//!
//! Given an input vector, each element of the non-driving network is
//! classified on/off; on-elements become shorts (negligible resistance per
//! §3.2), off-elements shorted by parallel on-paths vanish, and what
//! remains is the canonical [`OffPattern`] through which the gate leaks.

use crate::pattern::OffPattern;
use gate_lib::{Gate, SpNetwork};

/// Result of reducing a network under a concrete input vector.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Reduction {
    /// The (sub)network conducts: it behaves as a short circuit.
    Short,
    /// The (sub)network is blocking; the off-pattern carries the leakage.
    Off(OffPattern),
}

/// Reduces a series/parallel network to its off-pattern under `inputs`.
fn reduce(net: &SpNetwork, inputs: &[bool]) -> Reduction {
    match net {
        SpNetwork::Transistor { .. } => {
            if net.conducts(inputs) {
                Reduction::Short
            } else {
                Reduction::Off(OffPattern::Device)
            }
        }
        SpNetwork::TransmissionGate { .. } => {
            if net.conducts(inputs) {
                Reduction::Short
            } else {
                // Both devices of the pair are off, in parallel — the
                // paper's observation that TG leakage is twice a single
                // transistor's.
                Reduction::Off(OffPattern::parallel([
                    OffPattern::Device,
                    OffPattern::Device,
                ]))
            }
        }
        SpNetwork::Series(xs) => {
            let mut off_children = Vec::new();
            for x in xs {
                match reduce(x, inputs) {
                    Reduction::Short => {}
                    Reduction::Off(p) => off_children.push(p),
                }
            }
            if off_children.is_empty() {
                Reduction::Short
            } else {
                Reduction::Off(OffPattern::series(off_children))
            }
        }
        SpNetwork::Parallel(xs) => {
            let mut off_children = Vec::new();
            for x in xs {
                match reduce(x, inputs) {
                    // One conducting branch shorts the whole group.
                    Reduction::Short => return Reduction::Short,
                    Reduction::Off(p) => off_children.push(p),
                }
            }
            Reduction::Off(OffPattern::parallel(off_children))
        }
    }
}

/// The off-patterns a gate leaks through for one input vector: the blocked
/// core network plus one single-device pattern per (internal or output)
/// inverter.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the gate's input count, or if the
/// gate is non-complementary (its blocked network conducts).
pub fn gate_off_patterns(gate: &Gate, inputs: &[bool]) -> Vec<OffPattern> {
    assert_eq!(inputs.len(), gate.n_inputs, "input vector arity mismatch");
    let core_out = gate.pull_up.conducts(inputs);
    // The non-driving network: PU conducts when core = 1, so the blocked
    // network is PD in that case, and vice versa.
    let blocked = if core_out {
        &gate.pull_down
    } else {
        &gate.pull_up
    };
    let mut patterns = Vec::with_capacity(2);
    match reduce(blocked, inputs) {
        Reduction::Off(p) => patterns.push(p),
        Reduction::Short => panic!(
            "gate {}: blocked network conducts under {:?}",
            gate.name, inputs
        ),
    }
    // Every inverter (output or internal complement-generation) has exactly
    // one off device regardless of its input value.
    let inverters = usize::from(gate.output_inverter) + gate.internal_inverter_count();
    for _ in 0..inverters {
        patterns.push(OffPattern::Device);
    }
    patterns
}

/// Counts conducting transistors for one input vector (used for the
/// gate-tunnelling estimate: on-devices see the full gate bias).
///
/// A conducting transmission gate contributes one on-device (of its pair);
/// inverters always contribute exactly one.
pub fn on_device_count(gate: &Gate, inputs: &[bool]) -> usize {
    fn count(net: &SpNetwork, inputs: &[bool]) -> usize {
        match net {
            SpNetwork::Transistor { .. } => usize::from(net.conducts(inputs)),
            SpNetwork::TransmissionGate { .. } => usize::from(net.conducts(inputs)),
            SpNetwork::Series(xs) | SpNetwork::Parallel(xs) => {
                xs.iter().map(|x| count(x, inputs)).sum()
            }
        }
    }
    let inverters = usize::from(gate.output_inverter) + gate.internal_inverter_count();
    count(&gate.pull_up, inputs) + count(&gate.pull_down, inputs) + inverters
}

/// Iterates all input vectors of a gate as boolean slices.
pub fn input_vectors(n_inputs: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1usize << n_inputs)).map(move |i| (0..n_inputs).map(|k| (i >> k) & 1 == 1).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gate_lib::{GateFamily, Literal};

    fn nor3_like() -> Gate {
        // The paper's Fig. 4 example is a 3-input NOR; our library caps
        // parallel groups at two, so build it directly for the test
        // (validation of the composition rule is skipped via struct build).
        let pd = SpNetwork::parallel([
            SpNetwork::parallel([SpNetwork::nfet(0), SpNetwork::nfet(1)]),
            SpNetwork::nfet(2),
        ]);
        let pu = pd.dual();
        Gate {
            name: "NOR3".into(),
            family: GateFamily::Cmos,
            n_inputs: 3,
            function: pu.condition(3),
            pull_up: pu,
            pull_down: pd,
            output_inverter: false,
        }
    }

    #[test]
    fn nor3_all_zero_gives_three_parallel_offs() {
        // Fig. 4(a): input [0 0 0] → output 1 → PD blocked: three parallel
        // off transistors.
        let gate = nor3_like();
        let patterns = gate_off_patterns(&gate, &[false, false, false]);
        assert_eq!(patterns.len(), 1);
        assert_eq!(
            patterns[0],
            OffPattern::parallel([OffPattern::Device, OffPattern::Device, OffPattern::Device])
        );
    }

    #[test]
    fn nor3_all_one_gives_three_series_offs() {
        // Fig. 4(b): input [1 1 1] → output 0 → PU blocked: three series
        // off transistors.
        let gate = nor3_like();
        let patterns = gate_off_patterns(&gate, &[true, true, true]);
        assert_eq!(patterns.len(), 1);
        assert_eq!(patterns[0].series_depth(), 3);
        assert_eq!(patterns[0].device_count(), 3);
    }

    #[test]
    fn nor3_partial_vectors_share_pattern() {
        // §3.2: NOR3 with [1 1 0] and [1 0 1] generate the same pattern.
        let gate = nor3_like();
        let p110 = gate_off_patterns(&gate, &[true, true, false]);
        let p101 = gate_off_patterns(&gate, &[true, false, true]);
        assert_eq!(p110, p101);
    }

    #[test]
    fn nand2_pattern_census() {
        let lib = gate_lib::generate_library(GateFamily::Cmos);
        let nand = lib.iter().find(|g| g.name == "NAND2").expect("NAND2");
        // [0 0]: out 1, PD blocked: two series offs.
        let p = gate_off_patterns(nand, &[false, false]);
        assert_eq!(
            p[0],
            OffPattern::series([OffPattern::Device, OffPattern::Device])
        );
        // [1 1]: out 0, PU blocked: two parallel offs.
        let p = gate_off_patterns(nand, &[true, true]);
        assert_eq!(
            p[0],
            OffPattern::parallel([OffPattern::Device, OffPattern::Device])
        );
        // [1 0]: out 1, PD has one on (a) and one off (b): single device.
        let p = gate_off_patterns(nand, &[true, false]);
        assert_eq!(p[0], OffPattern::Device);
    }

    #[test]
    fn off_tg_counts_double_leakage() {
        let lib = gate_lib::generate_library(GateFamily::CntfetGeneralized);
        let xnor = lib.iter().find(|g| g.name == "XNOR2").expect("XNOR2");
        // [0 0]: a⊕b = 0 → output 1 → PD (TG on a⊕b) blocked: both
        // devices off in parallel.
        let p = gate_off_patterns(xnor, &[false, false]);
        assert_eq!(
            p[0],
            OffPattern::parallel([OffPattern::Device, OffPattern::Device])
        );
    }

    #[test]
    fn inverters_add_single_device_patterns() {
        let lib = gate_lib::generate_library(GateFamily::Cmos);
        let and2 = lib.iter().find(|g| g.name == "AND2").expect("AND2");
        let p = gate_off_patterns(and2, &[true, true]);
        // Core blocked network + output inverter device.
        assert_eq!(p.len(), 2);
        assert_eq!(p[1], OffPattern::Device);
        let xor2 = lib.iter().find(|g| g.name == "XOR2").expect("XOR2");
        let p = gate_off_patterns(xor2, &[false, true]);
        // Core + two internal inverters.
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn on_device_counts() {
        let lib = gate_lib::generate_library(GateFamily::Cmos);
        let nand = lib.iter().find(|g| g.name == "NAND2").expect("NAND2");
        // [1 1]: PD both on (2), PU both off (0).
        assert_eq!(on_device_count(nand, &[true, true]), 2);
        // [0 0]: PD 0, PU both on (2).
        assert_eq!(on_device_count(nand, &[false, false]), 2);
        // [1 0]: PD one on, PU one on.
        assert_eq!(on_device_count(nand, &[true, false]), 2);
    }

    #[test]
    fn tg_literal_variants_classify_consistently() {
        // An XNOR-passing TG must produce the same off pattern as the
        // XOR-passing one when blocked.
        let tg_xor = SpNetwork::tg(Literal::pos(0), Literal::pos(1));
        let tg_xnor = SpNetwork::tg(Literal::pos(0), Literal::neg(1));
        let r1 = reduce(&tg_xor, &[false, false]);
        let r2 = reduce(&tg_xnor, &[true, false]);
        assert_eq!(r1, r2);
    }

    #[test]
    fn input_vector_enumeration() {
        let vs: Vec<_> = input_vectors(2).collect();
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], vec![false, false]);
        assert_eq!(vs[3], vec![true, true]);
    }
}
