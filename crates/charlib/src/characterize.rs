//! The full library characterization flow of Fig. 5: gate topology
//! analysis → pattern classification → circuit-level leakage → averaged
//! power components.

use crate::leakage::LeakageSimulator;
use crate::pattern::PatternCensus;
use crate::topology::{gate_off_patterns, input_vectors, on_device_count};
use crate::{FANOUT, OPERATING_FREQUENCY_HZ, SHORT_CIRCUIT_FRACTION};
use device::{Capacitance, Current, Power, TechParams, Time};
use gate_lib::{generate_library, Gate, GateFamily};

/// The four power components of eq. (1)–(5), plus their sum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerSummary {
    /// P_D = α · C · f · V².
    pub dynamic: Power,
    /// P_SC = 0.15 · P_D.
    pub short_circuit: Power,
    /// P_S = I_off · V_DD (averaged over input vectors).
    pub static_sub: Power,
    /// P_G = I_g · V_DD (averaged over input vectors).
    pub gate_leak: Power,
}

impl PowerSummary {
    /// Total power P_T = P_D + P_SC + P_S + P_G.
    pub fn total(&self) -> Power {
        self.dynamic + self.short_circuit + self.static_sub + self.gate_leak
    }
}

/// A gate with its full power/timing characterization.
#[derive(Clone, Debug)]
pub struct CharacterizedGate {
    /// The underlying library cell.
    pub gate: Gate,
    /// Activity factor per the paper's definition.
    pub alpha: f64,
    /// Input capacitance per pin, farads.
    pub input_caps: Vec<f64>,
    /// Intrinsic output (drain) capacitance, farads.
    pub c_out: f64,
    /// Worst-case drive resistance, ohms.
    pub drive_resistance: f64,
    /// Cell area, square metres.
    pub area: f64,
    /// Average sub-threshold leakage over input vectors, amperes.
    pub ioff_avg: f64,
    /// Average gate-tunnelling leakage over input vectors, amperes.
    pub ig_avg: f64,
    /// Per-input-vector sub-threshold leakage, amperes (index = minterm).
    pub ioff_by_vector: Vec<f64>,
    /// Per-input-vector gate leakage, amperes (index = minterm).
    pub ig_by_vector: Vec<f64>,
    /// Supply voltage used during characterization, volts.
    pub vdd: f64,
}

impl CharacterizedGate {
    /// Average input pin capacitance.
    pub fn avg_input_cap(&self) -> Capacitance {
        let n = self.input_caps.len().max(1) as f64;
        Capacitance::new(self.input_caps.iter().sum::<f64>() / n)
    }

    /// Propagation delay into a load capacitance: `0.69·R·(C_out + C_L)`.
    pub fn delay(&self, load: Capacitance) -> Time {
        Time::new(0.69 * self.drive_resistance * (self.c_out + load.value()))
    }

    /// Delay under the paper's fanout-of-three load assumption.
    pub fn fo3_delay(&self) -> Time {
        self.delay(self.avg_input_cap() * FANOUT as f64)
    }

    /// The paper's gate-level power breakdown at 1 GHz, V_DD, FO3 load.
    pub fn power_summary(&self) -> PowerSummary {
        self.power_at(OPERATING_FREQUENCY_HZ, FANOUT as f64)
    }

    /// Power breakdown at an explicit frequency and fanout.
    pub fn power_at(&self, frequency_hz: f64, fanout: f64) -> PowerSummary {
        let c_load = self.c_out + fanout * self.avg_input_cap().value();
        let dynamic = self.alpha * c_load * frequency_hz * self.vdd * self.vdd;
        PowerSummary {
            dynamic: Power::new(dynamic),
            short_circuit: Power::new(SHORT_CIRCUIT_FRACTION * dynamic),
            static_sub: Current::new(self.ioff_avg) * device::Voltage::new(self.vdd),
            gate_leak: Current::new(self.ig_avg) * device::Voltage::new(self.vdd),
        }
    }

    /// Sub-threshold leakage for a specific input state (minterm index).
    pub fn ioff_for_state(&self, minterm: usize) -> f64 {
        self.ioff_by_vector[minterm]
    }

    /// Gate leakage for a specific input state (minterm index).
    pub fn ig_for_state(&self, minterm: usize) -> f64 {
        self.ig_by_vector[minterm]
    }
}

/// A fully characterized gate library.
#[derive(Clone, Debug)]
pub struct CharacterizedLibrary {
    /// The family that was characterized.
    pub family: GateFamily,
    /// The implementing technology.
    pub tech: TechParams,
    /// Characterized cells, in generation order.
    pub gates: Vec<CharacterizedGate>,
    /// Census of distinct off-patterns across the library (§3.2).
    pub pattern_census: PatternCensus,
    /// Number of circuit simulations actually run (≤ census size).
    pub simulated_patterns: usize,
}

impl CharacterizedLibrary {
    /// Looks up a cell by name.
    pub fn find(&self, name: &str) -> Option<&CharacterizedGate> {
        self.gates.iter().find(|g| g.gate.name == name)
    }

    /// Average of a per-gate metric across the library.
    pub fn average(&self, mut metric: impl FnMut(&CharacterizedGate) -> f64) -> f64 {
        let n = self.gates.len().max(1) as f64;
        self.gates.iter().map(&mut metric).sum::<f64>() / n
    }

    /// Average total gate power (the paper's library-level comparison).
    pub fn average_total_power(&self) -> Power {
        Power::new(self.average(|g| g.power_summary().total().value()))
    }
}

/// Runs the Fig. 5 characterization flow on a gate family.
///
/// # Example
///
/// ```
/// use charlib::characterize_library;
/// use gate_lib::GateFamily;
///
/// let lib = characterize_library(GateFamily::Cmos);
/// assert_eq!(lib.gates.len(), 14);
/// ```
pub fn characterize_library(family: GateFamily) -> CharacterizedLibrary {
    characterize_library_with(family, family.tech())
}

/// Like [`characterize_library`] but at an explicit technology point —
/// used by the supply-scaling study
/// (`TechParams::with_vdd`).
pub fn characterize_library_with(family: GateFamily, tech: TechParams) -> CharacterizedLibrary {
    let gates = generate_library(family);
    let mut sim = LeakageSimulator::new(tech.clone());
    let mut census = PatternCensus::new();
    let characterized = gates
        .into_iter()
        .map(|gate| characterize_gate(gate, &tech, &mut sim, &mut census))
        .collect();
    CharacterizedLibrary {
        family,
        tech,
        gates: characterized,
        pattern_census: census,
        simulated_patterns: sim.simulated_patterns(),
    }
}

fn characterize_gate(
    gate: Gate,
    tech: &TechParams,
    sim: &mut LeakageSimulator,
    census: &mut PatternCensus,
) -> CharacterizedGate {
    let n_vectors = 1usize << gate.n_inputs;
    let mut ioff_by_vector = Vec::with_capacity(n_vectors);
    let mut ig_by_vector = Vec::with_capacity(n_vectors);
    for v in input_vectors(gate.n_inputs) {
        let patterns = gate_off_patterns(&gate, &v);
        for p in &patterns {
            census.record(p.clone());
        }
        ioff_by_vector.push(sim.ioff_total(&patterns));
        ig_by_vector.push(tech.ig_unit * on_device_count(&gate, &v) as f64);
    }
    let ioff_avg = ioff_by_vector.iter().sum::<f64>() / n_vectors as f64;
    let ig_avg = ig_by_vector.iter().sum::<f64>() / n_vectors as f64;
    let input_caps: Vec<f64> = gate.input_capacitances(tech.c_gate, tech.c_polarity_gate);
    let alpha = gate.activity_factor();
    let c_out = gate.output_branches() as f64 * tech.c_drain;
    let drive_resistance = gate.drive_depth() as f64 * tech.r_on;
    let area = gate.transistor_count() as f64 * tech.area_per_device;
    CharacterizedGate {
        alpha,
        input_caps,
        c_out,
        drive_resistance,
        area,
        ioff_avg,
        ig_avg,
        ioff_by_vector,
        ig_by_vector,
        vdd: tech.vdd,
        gate,
    }
}

/// Exhaustive per-vector leakage *without* pattern classification — used by
/// the ablation bench to validate the pattern method's accuracy/speedup.
pub fn characterize_gate_exhaustive(gate: &Gate, tech: &TechParams) -> Vec<f64> {
    // A fresh simulator per call: no cross-gate cache, and a cleared cache
    // per vector so every vector costs a full simulation.
    let mut out = Vec::with_capacity(1usize << gate.n_inputs);
    for v in input_vectors(gate.n_inputs) {
        let mut sim = LeakageSimulator::new(tech.clone());
        let patterns = gate_off_patterns(gate, &v);
        out.push(sim.ioff_total(&patterns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterizes_all_families() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            assert!(!lib.gates.is_empty());
            for g in &lib.gates {
                assert!(g.ioff_avg > 0.0, "{}: I_off must be positive", g.gate.name);
                assert!(g.ig_avg > 0.0, "{}: I_g must be positive", g.gate.name);
                assert!(g.alpha > 0.0 && g.alpha <= 0.5);
                assert_eq!(g.ioff_by_vector.len(), 1 << g.gate.n_inputs);
            }
        }
    }

    #[test]
    fn pattern_classification_is_efficient() {
        // The whole point of §3.2: far fewer simulations than input
        // vectors. The generalized library has 46 gates with up to 64
        // vectors each; the distinct-pattern count stays small.
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let total_vectors: usize = lib.gates.iter().map(|g| 1usize << g.gate.n_inputs).sum();
        assert!(total_vectors > 500);
        assert!(
            lib.pattern_census.distinct() < 40,
            "distinct patterns: {}",
            lib.pattern_census.distinct()
        );
        assert_eq!(lib.simulated_patterns, lib.pattern_census.distinct());
    }

    #[test]
    fn cmos_gate_leak_is_about_ten_percent_of_static() {
        let lib = characterize_library(GateFamily::Cmos);
        let ratio = lib.average(|g| g.ig_avg / g.ioff_avg);
        assert!(
            (0.05..=0.25).contains(&ratio),
            "CMOS P_G ≈ 10% of P_S, got ratio {ratio}"
        );
    }

    #[test]
    fn cntfet_gate_leak_is_below_one_percent() {
        let lib = characterize_library(GateFamily::CntfetGeneralized);
        let ratio = lib.average(|g| g.ig_avg / g.ioff_avg);
        assert!(ratio < 0.01, "CNTFET P_G < 1% of P_S, got {ratio}");
    }

    #[test]
    fn static_well_below_dynamic() {
        for family in GateFamily::ALL {
            let lib = characterize_library(family);
            for g in &lib.gates {
                let p = g.power_summary();
                assert!(
                    p.dynamic.value() > 5.0 * p.static_sub.value(),
                    "{family}/{}: P_D {} vs P_S {}",
                    g.gate.name,
                    p.dynamic,
                    p.static_sub
                );
            }
        }
    }

    #[test]
    fn cntfet_inverter_cap_and_power_vs_cmos() {
        let cnt = characterize_library(GateFamily::CntfetGeneralized);
        let cmos = characterize_library(GateFamily::Cmos);
        let inv_cnt = cnt.find("INV").expect("INV");
        let inv_cmos = cmos.find("INV").expect("INV");
        // Paper §4: inverter input capacitance 36 aF vs 52 aF.
        assert!((inv_cnt.input_caps[0] - 36e-18).abs() < 1e-21);
        assert!((inv_cmos.input_caps[0] - 52e-18).abs() < 1e-21);
        // And correspondingly less dynamic power at equal activity.
        let pd_ratio =
            inv_cnt.power_summary().dynamic.value() / inv_cmos.power_summary().dynamic.value();
        assert!(pd_ratio < 0.8, "CNTFET inverter P_D ratio {pd_ratio}");
    }

    #[test]
    fn average_library_power_cnt_below_cmos() {
        // The headline gate-level claim: ~28 % average total-power saving.
        // Compare the conventional cells present in both libraries.
        let cnt = characterize_library(GateFamily::CntfetConventional);
        let cmos = characterize_library(GateFamily::Cmos);
        let mut savings = Vec::new();
        for g in &cnt.gates {
            let other = cmos.find(&g.gate.name).expect("same cell set");
            savings.push(
                1.0 - g.power_summary().total().value() / other.power_summary().total().value(),
            );
        }
        let avg = savings.iter().sum::<f64>() / savings.len() as f64;
        assert!(
            (0.15..=0.45).contains(&avg),
            "average power saving should be near the paper's 28%, got {avg}"
        );
    }

    #[test]
    fn fo3_delay_cnt_faster_than_cmos() {
        let cnt = characterize_library(GateFamily::CntfetConventional);
        let cmos = characterize_library(GateFamily::Cmos);
        let d_cnt = cnt.average(|g| g.fo3_delay().value());
        let d_cmos = cmos.average(|g| g.fo3_delay().value());
        let ratio = d_cmos / d_cnt;
        assert!(
            (3.5..=7.0).contains(&ratio),
            "intrinsic speed advantage ≈5× (Deng'07), got {ratio}"
        );
    }

    #[test]
    fn exhaustive_matches_pattern_method() {
        let tech = TechParams::cmos_32nm();
        let gates = generate_library(GateFamily::Cmos);
        let nand = gates.iter().find(|g| g.name == "NAND2").expect("NAND2");
        let mut sim = LeakageSimulator::new(tech.clone());
        let mut census = PatternCensus::new();
        let fast = characterize_gate(nand.clone(), &tech, &mut sim, &mut census);
        let slow = characterize_gate_exhaustive(nand, &tech);
        for (a, b) in fast.ioff_by_vector.iter().zip(slow.iter()) {
            assert!((a / b - 1.0).abs() < 1e-9);
        }
    }
}
