//! Circuit-level quantification of off-patterns (the HSPICE step of
//! Fig. 5), with memoization over the canonical patterns.

use std::collections::HashMap;

use crate::pattern::OffPattern;
use device::{Polarity, TechParams};
use spice_lite::{Circuit, NodeId, GROUND};

/// Simulates off-pattern leakage for one technology, caching by pattern.
///
/// Following the paper's assumption that n- and p-type off devices of equal
/// size leak equally, every pattern is realized as a stack of n-type
/// devices between V_DD and ground with all gates at 0 V; the solved rail
/// current is the pattern's I_off.
///
/// # Example
///
/// ```
/// use charlib::{LeakageSimulator, OffPattern};
/// use device::TechParams;
///
/// let mut sim = LeakageSimulator::new(TechParams::cmos_32nm());
/// let single = sim.ioff(&OffPattern::Device);
/// let stack = sim.ioff(&OffPattern::series([OffPattern::Device, OffPattern::Device]));
/// assert!(single > 3.0 * stack); // the stack effect
/// ```
#[derive(Debug)]
pub struct LeakageSimulator {
    tech: TechParams,
    cache: HashMap<OffPattern, f64>,
}

impl LeakageSimulator {
    /// Creates a simulator for a technology point.
    pub fn new(tech: TechParams) -> Self {
        Self {
            tech,
            cache: HashMap::new(),
        }
    }

    /// The technology this simulator models.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Leakage current of a pattern in amperes (cached).
    ///
    /// # Panics
    ///
    /// Panics if the underlying DC solve fails, which would indicate a bug
    /// in the solver or a degenerate pattern; all library patterns converge.
    pub fn ioff(&mut self, pattern: &OffPattern) -> f64 {
        if let Some(&i) = self.cache.get(pattern) {
            return i;
        }
        let i = self.simulate(pattern);
        self.cache.insert(pattern.clone(), i);
        i
    }

    /// Total leakage over a list of independent patterns (parallel paths
    /// from rail to rail).
    pub fn ioff_total(&mut self, patterns: &[OffPattern]) -> f64 {
        patterns.iter().map(|p| self.ioff(p)).sum()
    }

    /// Number of patterns simulated so far (cache size) — the efficiency
    /// metric of the pattern-classification method.
    pub fn simulated_patterns(&self) -> usize {
        self.cache.len()
    }

    fn simulate(&self, pattern: &OffPattern) -> f64 {
        let model = self.tech.model(Polarity::N);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, GROUND, self.tech.vdd);
        let mut counter = 0usize;
        build(pattern, &mut ckt, vdd, GROUND, &model, &mut counter);
        let op = ckt
            .solve_dc()
            .unwrap_or_else(|e| panic!("leakage solve failed for {pattern}: {e}"));
        op.source_current("VDD").expect("VDD source exists")
    }
}

/// Recursively instantiates a pattern between `top` and `bottom`.
fn build(
    pattern: &OffPattern,
    ckt: &mut Circuit,
    top: NodeId,
    bottom: NodeId,
    model: &device::CompactModel,
    counter: &mut usize,
) {
    match pattern {
        OffPattern::Device => {
            let name = format!("M{}", *counter);
            *counter += 1;
            // Gate at 0 V: the device is off; source towards the bottom.
            ckt.add_transistor(name, *model, top, GROUND, bottom);
        }
        OffPattern::Series(children) => {
            let mut upper = top;
            for (i, child) in children.iter().enumerate() {
                let lower = if i + 1 == children.len() {
                    bottom
                } else {
                    let n = ckt.node(format!("mid{}_{}", *counter, i));
                    *counter += 1;
                    n
                };
                build(child, ckt, upper, lower, model, counter);
                upper = lower;
            }
        }
        OffPattern::Parallel(children) => {
            for child in children {
                build(child, ckt, top, bottom, model, counter);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use device::TechParams;

    fn d() -> OffPattern {
        OffPattern::Device
    }

    #[test]
    fn single_device_matches_unit_ioff() {
        let tech = TechParams::cmos_32nm();
        let unit = tech.ioff_unit;
        let mut sim = LeakageSimulator::new(tech);
        let i = sim.ioff(&d());
        assert!((i / unit - 1.0).abs() < 0.05, "got {i:e} vs unit {unit:e}");
    }

    #[test]
    fn parallel_adds_series_suppresses() {
        let mut sim = LeakageSimulator::new(TechParams::cmos_32nm());
        let single = sim.ioff(&d());
        let par3 = sim.ioff(&OffPattern::parallel([d(), d(), d()]));
        let ser3 = sim.ioff(&OffPattern::series([d(), d(), d()]));
        assert!((par3 / (3.0 * single) - 1.0).abs() < 0.05);
        // Fig. 4: the parallel arrangement leaks more than 3× the series
        // one (stack factor on top of the 3× multiplicity).
        assert!(par3 / ser3 > 3.0, "ratio {}", par3 / ser3);
        assert!(ser3 < single, "a stack leaks less than a single device");
    }

    #[test]
    fn tg_pattern_leaks_twice_a_device() {
        // §3: transmission-gate leakage is twice a single transistor's.
        let mut sim = LeakageSimulator::new(TechParams::cntfet_32nm());
        let single = sim.ioff(&d());
        let tg = sim.ioff(&OffPattern::parallel([d(), d()]));
        assert!((tg / (2.0 * single) - 1.0).abs() < 0.05);
    }

    #[test]
    fn cache_hits_do_not_resimulate() {
        let mut sim = LeakageSimulator::new(TechParams::cmos_32nm());
        let p = OffPattern::series([d(), OffPattern::parallel([d(), d()])]);
        let a = sim.ioff(&p);
        assert_eq!(sim.simulated_patterns(), 1);
        let b = sim.ioff(&p);
        assert_eq!(sim.simulated_patterns(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_pattern_between_extremes() {
        let mut sim = LeakageSimulator::new(TechParams::cmos_32nm());
        let mixed = sim.ioff(&OffPattern::series([d(), OffPattern::parallel([d(), d()])]));
        let ser2 = sim.ioff(&OffPattern::series([d(), d()]));
        let par2 = sim.ioff(&OffPattern::parallel([d(), d()]));
        assert!(mixed > ser2, "extra parallel path raises leakage");
        assert!(mixed < par2, "series device still suppresses");
    }

    #[test]
    fn cntfet_patterns_leak_an_order_less() {
        let mut cnt = LeakageSimulator::new(TechParams::cntfet_32nm());
        let mut cmos = LeakageSimulator::new(TechParams::cmos_32nm());
        let p = OffPattern::parallel([d(), OffPattern::series([d(), d()])]);
        let ratio = cmos.ioff(&p) / cnt.ioff(&p);
        assert!(ratio > 5.0, "CNTFET isolation advantage, got {ratio}");
    }
}
