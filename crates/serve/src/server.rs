//! The `synthd` server proper: an acceptor, a bounded job queue with
//! admission control, and a fixed pool of worker threads executing
//! jobs against the process-wide warm caches.
//!
//! # Threading model
//!
//! One acceptor thread owns the listener; each connection gets a
//! handler thread that reads request frames and writes response frames
//! in order. Job requests pass through *admission control*: if the
//! bounded queue is full the handler answers [`Response::Busy`]
//! immediately (typed backpressure — the client retries after a
//! backoff) and the job never enters the system. Admitted jobs wait on
//! a condvar-fed queue until one of the `workers` threads picks them
//! up; the handler blocks on a per-job channel for the single response.
//!
//! Workers never build private thread pools
//! (`rayon::ThreadPool::install` swaps a *process-global* pool
//! in the vendored shim): the pipeline's parallel hot loops run on the
//! shared pool, and job-level parallelism comes from the worker count.
//!
//! # Warm caches
//!
//! Three layers amortize across requests: the process-wide per-family
//! characterized libraries / NPN match caches / rewrite library
//! (`ambipolar::engine`, built once per process — observable via its
//! build counters), and the per-circuit [`SynthCache`] keyed by content
//! hash (resubmitted circuits skip synthesis *and* cut enumeration).

use crate::cache::{content_key, SynthCache, SynthEntry};
use crate::protocol::{JobSpec, ProtocolError, Request, Response};
use crate::wire::{read_frame, write_frame};
use aig::profile::JobScope;
use ambipolar::json::{json_f64, json_string};
use ambipolar::pipeline::{mapper_cut_db, run_job, CircuitResult, JobError, PipelineConfig};
use ambipolar::{engine, MappedJob};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use techmap::MapConfig;

/// Server knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Jobs allowed to *wait* beyond the ones running; the admission
    /// bound. A full queue answers [`Response::Busy`].
    pub queue_depth: usize,
    /// Circuits the warm cache keeps resident (LRU beyond that).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            cache_capacity: 64,
        }
    }
}

struct QueuedJob {
    /// Server-assigned request id (monotone across accepted requests).
    id: u64,
    spec: JobSpec,
    accepted: Instant,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct Stats {
    jobs_ok: AtomicU64,
    jobs_busy: AtomicU64,
    jobs_error: AtomicU64,
    jobs_timeout: AtomicU64,
    queue_peak: AtomicU64,
}

struct Shared {
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutting_down: AtomicBool,
    cache: SynthCache,
    stats: Stats,
    config: ServerConfig,
    /// Request-id allocator; ids start at 1 (0 marks "no id assigned" —
    /// a job that failed before admission).
    next_request_id: AtomicU64,
}

/// A running `synthd` instance. Dropping it (or calling
/// [`Server::shutdown`]) stops admission, drains the queue, and joins
/// every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns.
    /// The listener is live when this returns — a client may connect
    /// immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            cache: SynthCache::new(config.cache_capacity),
            stats: Stats::default(),
            config: config.clone(),
            next_request_id: AtomicU64::new(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("synthd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("synthd-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The lifetime statistics document (same JSON a
    /// [`Request::Stats`] frame returns).
    pub fn stats_json(&self) -> String {
        stats_json(&self.shared)
    }

    /// Blocks until a shutdown request arrives over the wire, then
    /// joins all threads (the `synthd` binary's main loop).
    pub fn wait(mut self) {
        self.join_all();
    }

    /// Stops admission, drains queued jobs, joins all threads.
    pub fn shutdown(mut self) {
        trigger_shutdown(&self.shared, self.addr);
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
            // The acceptor exits only on the shutdown flag; wake every
            // worker so they observe it and drain.
            self.shared.available.notify_all();
            for worker in self.workers.drain(..) {
                let _ = worker.join();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        trigger_shutdown(&self.shared, self.addr);
        self.join_all();
    }
}

/// Sets the shutdown flag and pokes the (possibly blocked) acceptor
/// with a throwaway connection so it re-checks the flag.
fn trigger_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        shared.available.notify_all();
        let _ = TcpStream::connect(addr);
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("synthd-conn".into())
            .spawn(move || handle_connection(stream, &shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // disconnect (clean EOF included)
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A framing-level decode failure means the peer and we
                // disagree on the byte stream; answer once and drop the
                // connection rather than guess at resynchronization.
                let _ = respond(&mut stream, &protocol_error(&e));
                return;
            }
        };
        let response = match request {
            Request::Stats => Response::Stats {
                json: stats_json(shared),
            },
            Request::Metrics => Response::Metrics {
                text: obs::render_prometheus(),
            },
            Request::Shutdown => {
                let json = stats_json(shared);
                trigger_shutdown(shared, stream.local_addr().expect("connected socket"));
                let _ = respond(&mut stream, &Response::Stats { json });
                return;
            }
            Request::Job(spec) => submit_job(shared, spec),
        };
        if respond(&mut stream, &response).is_err() {
            return;
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write_frame(stream, &response.encode())
}

fn protocol_error(e: &ProtocolError) -> Response {
    Response::Error {
        request_id: 0,
        msg: format!("malformed request: {e}"),
    }
}

/// Admission control + synchronous wait for the job's single response.
fn submit_job(shared: &Arc<Shared>, spec: JobSpec) -> Response {
    let (reply, response) = mpsc::channel();
    let request_id;
    {
        let mut queue = shared.queue.lock().expect("queue lock");
        if shared.shutting_down.load(Ordering::SeqCst) {
            return Response::Error {
                request_id: 0,
                msg: "server is shutting down".into(),
            };
        }
        if queue.len() >= shared.config.queue_depth {
            shared.stats.jobs_busy.fetch_add(1, Ordering::Relaxed);
            return Response::Busy;
        }
        // Ids are allocated at admission, under the queue lock, so they
        // are dense and monotone over *accepted* requests.
        request_id = shared.next_request_id.fetch_add(1, Ordering::Relaxed);
        queue.push_back(QueuedJob {
            id: request_id,
            spec,
            accepted: Instant::now(),
            reply,
        });
        shared
            .stats
            .queue_peak
            .fetch_max(queue.len() as u64, Ordering::Relaxed);
    }
    shared.available.notify_one();
    match response.recv() {
        Ok(r) => r,
        // The worker dropped the sender without responding — it
        // panicked mid-job. The server stays up; this job reports an
        // internal error.
        Err(_) => Response::Error {
            request_id,
            msg: "worker failed while executing the job".into(),
        },
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock");
            }
        };
        let response = execute_job(shared, &job.spec, job.accepted, job.id);
        let counter = match &response {
            Response::Ok { .. } => &shared.stats.jobs_ok,
            Response::Timeout { .. } => &shared.stats.jobs_timeout,
            _ => &shared.stats.jobs_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let _ = job.reply.send(response);
    }
}

/// Runs one job end to end: knob validation, warm-cache lookup,
/// synthesis on a miss, mapping/verification/estimation via
/// [`run_job`], then rendering. All profile counters the job causes —
/// on whichever pool threads its parallel sections run — are captured
/// by a [`JobScope`] and reported in the telemetry document. The whole
/// execution runs under a `request` root span tagged with the request
/// id, and the request's latency and queue wait land in the
/// `synthd_request_latency_us` / `synthd_queue_wait_us` histograms.
fn execute_job(shared: &Shared, spec: &JobSpec, accepted: Instant, request_id: u64) -> Response {
    let mut root = obs::span!("request");
    root.record("request_id", request_id)
        .record_str("name", &spec.name)
        .record_str("family", spec.family.label());
    let started = Instant::now();
    let queue_wait = started.saturating_duration_since(accepted);
    obs::histogram("synthd_queue_wait_us").observe(queue_wait.as_micros() as u64);
    let response = execute_job_inner(shared, spec, accepted, started, queue_wait, request_id);
    // "Jobs served" = completed jobs: the histogram's total count must
    // equal the stats document's jobs_ok.
    if matches!(response, Response::Ok { .. }) {
        obs::histogram("synthd_request_latency_us").observe(started.elapsed().as_micros() as u64);
    }
    response
}

fn execute_job_inner(
    shared: &Shared,
    spec: &JobSpec,
    accepted: Instant,
    started: Instant,
    queue_wait: Duration,
    request_id: u64,
) -> Response {
    let scope = JobScope::begin();
    let deadline = (spec.timeout_ms > 0).then(|| accepted + Duration::from_millis(spec.timeout_ms));

    let config = match pipeline_config(spec) {
        Ok(c) => c,
        Err(msg) => return Response::Error { request_id, msg },
    };
    let flow = match engine::parse_flow(&config) {
        Ok(f) => f,
        Err(e) => {
            return Response::Error {
                request_id,
                msg: e.to_string(),
            }
        }
    };
    let input = match aig::from_aiger_auto(&spec.aiger) {
        Ok(aig) => aig,
        Err(e) => {
            return Response::Error {
                request_id,
                msg: format!("bad AIGER payload: {e}"),
            }
        }
    };

    // Warm-cache lookup: synthesis and cut enumeration are family- and
    // objective-independent, so the key covers only their inputs.
    let key = content_key(
        &spec.aiger,
        &config.flow,
        config.choices,
        spec.cut_k,
        spec.max_cuts,
    );
    let (entry, cache_hit) = match shared.cache.lookup(key, deadline) {
        None => {
            // Deadline lapsed waiting on the single-flight leader.
            obs::event("deadline/lapsed");
            return Response::Timeout { request_id };
        }
        Some(crate::cache::Lookup::Hit(entry)) => (entry, true),
        Some(crate::cache::Lookup::Build(lease)) => {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                obs::event("deadline/lapsed");
                return Response::Timeout { request_id }; // lease drop hands leadership on
            }
            let synthesized;
            let choices;
            {
                let _s = obs::span!("synthesize");
                (synthesized, choices) = engine::synthesize_with_choices(&flow, &input, &config);
            }
            let entry = Arc::new(SynthEntry {
                cut_db: mapper_cut_db(&config.map),
                synthesized,
                choices,
            });
            // Publish as soon as synthesis — the dominant cost — is
            // done, so single-flight followers unblock now instead of
            // waiting out this job's mapping and estimation too. The
            // cut database is republished enriched below.
            lease.publish(Arc::clone(&entry));
            (entry, false)
        }
    };

    let library = engine::library(spec.family);
    let mut cut_db = entry.cut_db.clone();
    let job = run_job(
        &entry.synthesized,
        entry.choices.as_ref(),
        library,
        &config,
        &mut cut_db,
        deadline,
    );
    let job = match job {
        Ok(job) => job,
        Err(JobError::DeadlineExceeded) => {
            obs::event("deadline/lapsed");
            return Response::Timeout { request_id };
        }
        Err(JobError::Pipeline(e)) => {
            return Response::Error {
                request_id,
                msg: e.to_string(),
            }
        }
    };
    // Republish with the (now topped-up) cut database so resubmissions
    // skip enumeration too. Hits republish nothing: their clone found
    // the cuts already present.
    if !cache_hit {
        shared.cache.put(
            key,
            Arc::new(SynthEntry {
                synthesized: entry.synthesized.clone(),
                choices: entry.choices.clone(),
                cut_db,
            }),
        );
    }

    let netlist_verilog =
        techmap::to_structural_verilog(&job.netlist, library, &module_name(&spec.name));
    let qor_json = job_qor_json(spec, entry.synthesized.and_count(), &job);
    let telemetry_json = telemetry_json(
        request_id,
        started.elapsed(),
        queue_wait,
        cache_hit,
        &scope.finish(),
    );
    Response::Ok {
        request_id,
        netlist_verilog,
        qor_json,
        telemetry_json,
    }
}

/// Maps the wire spec onto the pipeline configuration, validating the
/// knobs the mapper would otherwise only reject mid-job.
fn pipeline_config(spec: &JobSpec) -> Result<PipelineConfig, String> {
    if !(2..=6).contains(&spec.cut_k) {
        return Err(format!("cut_k {} out of range 2..=6", spec.cut_k));
    }
    let defaults = MapConfig::default();
    Ok(PipelineConfig {
        patterns: spec.patterns as usize,
        seed: spec.seed,
        flow: spec.flow.clone(),
        map: MapConfig {
            objective: spec.objective,
            cut_k: spec.cut_k as usize,
            max_cuts: if spec.max_cuts == 0 {
                defaults.max_cuts
            } else {
                spec.max_cuts as usize
            },
            ..defaults
        },
        verify: spec.verify,
        choices: spec.choices,
        ..PipelineConfig::default()
    })
}

/// A Verilog-safe module identifier derived from the client's label.
fn module_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, 'm');
    }
    out
}

/// The deterministic per-job QoR document: a pure function of the spec
/// and the mapped result. Resubmitting an identical spec must yield
/// identical bytes — the determinism tests hold the server to that.
pub fn job_qor_json(spec: &JobSpec, synth_ands: usize, job: &MappedJob) -> String {
    let r: &CircuitResult = &job.result;
    let energy = r.total_power().value() / charlib::OPERATING_FREQUENCY_HZ;
    let mut delta = r
        .gates_no_choice
        .map(|g| format!(", \"gates_no_choice\": {g}"))
        .unwrap_or_default();
    if let Some(d) = r.delay_no_choice {
        delta.push_str(&format!(", \"delay_s_no_choice\": {}", json_f64(d.value())));
    }
    format!(
        "{{\"artifact\": \"synthd_job\", \"name\": {}, \"family\": {}, \
         \"objective\": {}, \"cut_k\": {}, \"verify\": {}, \"choices\": {}, \
         \"patterns\": {}, \"seed\": {}, \"flow\": {}, \"synth_ands\": {}, \
         \"gates\": {}{delta}, \"delay_s\": {}, \"area_m2\": {}, \"pd_w\": {}, \
         \"ps_w\": {}, \"pt_w\": {}, \"energy_j\": {}, \"edp_js\": {}, \
         \"transistors\": {}}}",
        json_string(&spec.name),
        json_string(spec.family.label()),
        json_string(&spec.objective.to_string()),
        spec.cut_k,
        json_string(&spec.verify.to_string()),
        spec.choices,
        spec.patterns,
        spec.seed,
        json_string(&spec.flow),
        synth_ands,
        r.gates,
        json_f64(r.delay.value()),
        json_f64(r.area),
        json_f64(r.power.dynamic.value()),
        json_f64(r.power.static_sub.value()),
        json_f64(r.total_power().value()),
        json_f64(energy),
        json_f64(r.edp().value()),
        r.transistors,
    )
}

/// The per-request telemetry document, in two sections:
///
/// * `"deterministic"` — the cache flag and every profile counter the
///   job's [`JobScope`] attributed to it. A warm resubmission of an
///   identical spec repeats the exact same work against the exact same
///   cached state, so this section is **byte-stable** across warm
///   repeats (the determinism tests byte-compare it).
/// * `"timing"` — request id, wall clock, queue wait. Never stable.
fn telemetry_json(
    request_id: u64,
    wall: Duration,
    queue_wait: Duration,
    cache_hit: bool,
    counters: &aig::profile::Counters,
) -> String {
    let mut deterministic = format!("{{\"cache_hit\": {cache_hit}");
    for (name, value) in counters.pairs() {
        deterministic.push_str(&format!(", \"{name}\": {value}"));
    }
    deterministic.push('}');
    format!(
        "{{\"deterministic\": {deterministic}, \
         \"timing\": {{\"request_id\": {request_id}, \"wall_ms\": {}, \
         \"queue_wait_ms\": {}}}}}",
        json_f64(wall.as_secs_f64() * 1e3),
        json_f64(queue_wait.as_secs_f64() * 1e3),
    )
}

fn stats_json(shared: &Shared) -> String {
    let s = &shared.stats;
    format!(
        "{{\"jobs_ok\": {}, \"jobs_busy\": {}, \"jobs_error\": {}, \
         \"jobs_timeout\": {}, \"queue_peak\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"cache_resident\": {}, \
         \"characterizations\": {}, \"match_cache_builds\": {}, \
         \"rewrite_library_builds\": {}, \"workers\": {}, \"queue_depth\": {}}}",
        s.jobs_ok.load(Ordering::Relaxed),
        s.jobs_busy.load(Ordering::Relaxed),
        s.jobs_error.load(Ordering::Relaxed),
        s.jobs_timeout.load(Ordering::Relaxed),
        s.queue_peak.load(Ordering::Relaxed),
        shared.cache.hits(),
        shared.cache.misses(),
        shared.cache.len(),
        engine::characterization_count(),
        engine::match_cache_build_count(),
        engine::rewrite_library_build_count(),
        shared.config.workers,
        shared.config.queue_depth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_names_are_verilog_safe() {
        assert_eq!(module_name("C1355"), "C1355");
        assert_eq!(module_name("rand-10k.v2"), "rand_10k_v2");
        assert_eq!(module_name(""), "m");
        assert_eq!(module_name("9to1"), "m9to1");
    }
}
