//! A minimal blocking client for `synthd`: one connection, one
//! request frame out, one response frame back, in order. The bench
//! load generator and the integration tests both drive the server
//! through this, so the wire path they measure is the one real
//! clients use.

use crate::protocol::{JobSpec, Request, Response};
use crate::wire::{read_frame, write_frame};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected `synthd` client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (TCP, Nagle off — requests are single small frames and
    /// latency is the measured quantity).
    ///
    /// # Errors
    ///
    /// Connection-level I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O errors, plus [`io::ErrorKind::InvalidData`] when the
    /// response payload fails to decode.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        let payload = read_frame(&mut self.stream)?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Submits one job.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn submit(&mut self, spec: &JobSpec) -> io::Result<Response> {
        self.request(&Request::Job(spec.clone()))
    }

    /// Submits one job, retrying [`Response::Busy`] with a linear
    /// backoff (`attempt × backoff`) up to `max_retries` times. Any
    /// non-`Busy` response is returned as-is; exhausting the retries
    /// returns the final `Busy`.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_retries: usize,
        backoff: Duration,
    ) -> io::Result<Response> {
        for attempt in 1..=max_retries {
            match self.submit(spec)? {
                Response::Busy => std::thread::sleep(backoff * attempt as u32),
                other => return Ok(other),
            }
        }
        self.submit(spec)
    }

    /// Fetches the server's lifetime statistics JSON.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; `InvalidData` when the server answers
    /// with anything but a stats document.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }

    /// Fetches the server's metrics registry in the Prometheus text
    /// exposition format.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; `InvalidData` when the server answers
    /// with anything but a metrics page.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected metrics, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down; returns its final statistics.
    ///
    /// # Errors
    ///
    /// As [`Client::stats`].
    pub fn shutdown(&mut self) -> io::Result<String> {
        match self.request(&Request::Shutdown)? {
            Response::Stats { json } => Ok(json),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats, got {other:?}"),
            )),
        }
    }
}
