//! The per-circuit warm cache: synthesized networks and their cut
//! databases, keyed by a content hash of everything that determines
//! them.
//!
//! Synthesis (the flow script) and cut enumeration are family- and
//! objective-independent: the same AIG submitted against all three gate
//! families shares one synthesized network and one [`CutDb`]. The cache
//! key therefore covers exactly the inputs of those stages — the AIGER
//! bytes, the flow script, the choices knob, and the cut shape
//! (`cut_k`, `max_cuts`) — and deliberately excludes family, objective,
//! verify, patterns and seed. A 3-family replay of one circuit pays for
//! one synthesis and one enumeration, not three.
//!
//! Concurrency model: entries are immutable snapshots behind an `Arc`.
//! A job *clones* the entry's cut database, maps with the clone (the
//! mapper tops it up in place), and publishes the topped-up database
//! back — so later submissions of the same circuit start from the
//! richest database seen so far. Cloning is cheap next to enumeration
//! (the Table-1 drivers use the same pattern).

use aig::{Aig, ChoiceAig, CutDb};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What one cache entry remembers: the flow's products for a circuit.
#[derive(Clone, Debug)]
pub struct SynthEntry {
    /// The synthesized network (flow output).
    pub synthesized: Aig,
    /// The structural-choice network, when the flow collected one.
    pub choices: Option<ChoiceAig>,
    /// The cut database keyed to `synthesized`, as rich as the last
    /// job that used it left it.
    pub cut_db: CutDb,
}

/// The cache key: an FNV-1a 64 content hash over the synthesis-stage
/// inputs. Collisions are a non-issue at server scale (dozens of
/// distinct circuits), but the key is still compared exactly — the
/// map's key *is* the hash, and two circuits colliding would merely
/// serve one of them a wrong-but-verified netlist candidate that the
/// configured verification would refute; with verification off the
/// 2^-64 risk is accepted.
pub fn content_key(aiger: &[u8], flow: &str, choices: bool, cut_k: u8, max_cuts: u8) -> u64 {
    let mut h = Fnv1a::new();
    h.update(aiger);
    h.update(&[0xFE]); // domain separator between variable-length fields
    h.update(flow.as_bytes());
    h.update(&[0xFE, choices as u8, cut_k, max_cuts]);
    h.finish()
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The warm cache itself: bounded, LRU-evicted, hit/miss counted, with
/// *single-flight* misses — when several jobs miss the same key at
/// once (the same circuit fanned out across families or clients), one
/// becomes the leader and synthesizes while the rest wait for its
/// published entry instead of duplicating the work.
pub struct SynthCache {
    inner: Mutex<Inner>,
    changed: Condvar,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    entries: HashMap<u64, Slot>,
    /// Keys some job is currently building (single-flight leaders).
    pending: HashSet<u64>,
    clock: u64,
}

/// The outcome of [`SynthCache::lookup`].
pub enum Lookup<'a> {
    /// The entry is resident (possibly published by a leader this job
    /// waited for).
    Hit(Arc<SynthEntry>),
    /// This job is the leader for the key: build the entry, then
    /// [`BuildLease::publish`] it. Dropping the lease unpublished
    /// (error/timeout paths) wakes the waiters so one of them takes
    /// over leadership.
    Build(BuildLease<'a>),
}

/// Leadership over a missing key (see [`Lookup::Build`]).
pub struct BuildLease<'a> {
    cache: &'a SynthCache,
    key: u64,
    published: bool,
}

impl BuildLease<'_> {
    /// The leased key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Publishes the built entry and wakes every waiter.
    pub fn publish(mut self, entry: Arc<SynthEntry>) {
        self.published = true;
        self.cache.put(self.key, entry);
    }
}

impl Drop for BuildLease<'_> {
    fn drop(&mut self) {
        if !self.published {
            let mut inner = self.cache.inner.lock().expect("cache lock");
            inner.pending.remove(&self.key);
            drop(inner);
            self.cache.changed.notify_all();
        }
    }
}

struct Slot {
    entry: Arc<SynthEntry>,
    last_used: u64,
}

impl SynthCache {
    /// An empty cache holding at most `capacity` circuits (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SynthCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                pending: HashSet::new(),
                clock: 0,
            }),
            changed: Condvar::new(),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Single-flight lookup: a resident key is a [`Lookup::Hit`]; a
    /// missing key with no builder makes *this caller* the leader
    /// ([`Lookup::Build`]); a missing key someone else is building
    /// blocks until the leader publishes (then hits) or gives up (then
    /// this caller inherits leadership). Returns `None` when `deadline`
    /// lapses while waiting.
    pub fn lookup(&self, key: u64, deadline: Option<Instant>) -> Option<Lookup<'_>> {
        // Follower wait time (single-flight) lands in the
        // `synthd_cache_singleflight_wait_us` histogram; leader/follower
        // elections show as instant events on the request's span.
        let mut wait_started: Option<Instant> = None;
        let observe_wait = |wait_started: Option<Instant>| {
            if let Some(t0) = wait_started {
                obs::histogram("synthd_cache_singleflight_wait_us")
                    .observe(t0.elapsed().as_micros() as u64);
            }
        };
        let mut inner = self.inner.lock().expect("cache lock");
        loop {
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(slot) = inner.entries.get_mut(&key) {
                slot.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::event("cache/hit");
                observe_wait(wait_started);
                return Some(Lookup::Hit(Arc::clone(&slot.entry)));
            }
            if inner.pending.insert(key) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::event("cache/leader");
                observe_wait(wait_started);
                return Some(Lookup::Build(BuildLease {
                    cache: self,
                    key,
                    published: false,
                }));
            }
            // Someone is building this key; wait in bounded slices so
            // a caller-side deadline stays honored.
            if wait_started.is_none() {
                obs::event("cache/follower");
                wait_started = Some(Instant::now());
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                observe_wait(wait_started);
                return None;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(inner, Duration::from_millis(10))
                .expect("cache lock");
            inner = guard;
        }
    }

    /// Publishes an entry (insert or replace), evicting the
    /// least-recently-used circuit beyond capacity. Jobs call this both
    /// on a miss (fresh synthesis) and after a hit (to publish the
    /// topped-up cut database).
    pub fn put(&self, key: u64, entry: Arc<SynthEntry>) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        inner.pending.remove(&key);
        inner.entries.insert(
            key,
            Slot {
                entry,
                last_used: clock,
            },
        );
        while inner.entries.len() > self.capacity {
            let coldest = inner
                .entries
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty over capacity");
            inner.entries.remove(&coldest);
        }
        drop(inner);
        self.changed.notify_all();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Circuits currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Arc<SynthEntry> {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.output(a);
        Arc::new(SynthEntry {
            cut_db: CutDb::new(aig::CutConfig { k: 4, max_cuts: 8 }),
            synthesized: aig,
            choices: None,
        })
    }

    #[test]
    fn keys_cover_every_synthesis_input() {
        let base = content_key(b"aig", "b; rw", false, 6, 8);
        assert_eq!(base, content_key(b"aig", "b; rw", false, 6, 8));
        assert_ne!(base, content_key(b"aiG", "b; rw", false, 6, 8));
        assert_ne!(base, content_key(b"aig", "b; rf", false, 6, 8));
        assert_ne!(base, content_key(b"aig", "b; rw", true, 6, 8));
        assert_ne!(base, content_key(b"aig", "b; rw", false, 5, 8));
        assert_ne!(base, content_key(b"aig", "b; rw", false, 6, 9));
        // Field boundaries are separated: moving a byte across the
        // aiger/flow boundary changes the key.
        assert_ne!(
            content_key(b"ab", "c", false, 6, 8),
            content_key(b"a", "bc", false, 6, 8)
        );
    }

    /// Non-blocking probe: a miss's build lease is dropped on the spot
    /// (so leadership never lingers).
    fn get(cache: &SynthCache, key: u64) -> Option<Arc<SynthEntry>> {
        match cache.lookup(key, None).expect("no deadline") {
            Lookup::Hit(e) => Some(e),
            Lookup::Build(_lease) => None,
        }
    }

    #[test]
    fn lru_eviction_and_counters() {
        let cache = SynthCache::new(2);
        assert!(get(&cache, 1).is_none());
        cache.put(1, entry());
        cache.put(2, entry());
        assert!(get(&cache, 1).is_some()); // 1 now warmer than 2
        cache.put(3, entry()); // evicts 2
        assert!(get(&cache, 2).is_none());
        assert!(get(&cache, 1).is_some());
        assert!(get(&cache, 3).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn misses_are_single_flight() {
        let cache = SynthCache::new(4);
        let lease = match cache.lookup(7, None).expect("no deadline") {
            Lookup::Build(lease) => lease,
            Lookup::Hit(_) => panic!("empty cache cannot hit"),
        };
        assert_eq!(lease.key(), 7);
        // A follower blocks until the leader publishes, then hits.
        std::thread::scope(|scope| {
            let follower = scope.spawn(|| match cache.lookup(7, None).expect("no deadline") {
                Lookup::Hit(_) => true,
                Lookup::Build(_) => false,
            });
            std::thread::sleep(Duration::from_millis(20));
            lease.publish(entry());
            assert!(
                follower.join().expect("follower"),
                "follower must hit the published entry"
            );
        });
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);

        // A dropped (failed) lease hands leadership to a waiter.
        let lease = match cache.lookup(8, None).expect("no deadline") {
            Lookup::Build(lease) => lease,
            Lookup::Hit(_) => panic!("key 8 unseen"),
        };
        drop(lease);
        assert!(
            matches!(cache.lookup(8, None), Some(Lookup::Build(_))),
            "leadership must be reacquirable after a failed build"
        );

        // A waiter with a lapsed deadline gives up instead of hanging.
        let _lease = match cache.lookup(9, None).expect("no deadline") {
            Lookup::Build(lease) => lease,
            Lookup::Hit(_) => panic!("key 9 unseen"),
        };
        assert!(
            cache
                .lookup(9, Some(Instant::now() - Duration::from_millis(1)))
                .is_none(),
            "lapsed deadline while waiting must return None"
        );
    }
}
