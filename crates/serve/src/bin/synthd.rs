//! The `synthd` daemon: bind, warm the process-wide caches, serve
//! until a shutdown frame arrives.
//!
//! ```text
//! synthd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--no-warm]
//!        [--trace-out PATH]
//! ```
//!
//! By default the three per-family characterized libraries and NPN
//! match caches are built *before* the ready line is printed, so the
//! first request ever served already runs warm (`--no-warm` skips
//! this, moving the build cost into the first requests). The ready
//! line — `synthd listening on ADDR` — goes to stdout and is the
//! machine-readable signal harnesses wait for.
//!
//! `--trace-out PATH` enables span recording for the process lifetime
//! and writes a Chrome-trace/Perfetto JSON of the retained span ring to
//! `PATH` at shutdown (open it in `chrome://tracing` or
//! <https://ui.perfetto.dev>).

use gate_lib::GateFamily;
use serve::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:9470".into(),
        ..ServerConfig::default()
    };
    let mut warm = true;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse(&value("--queue"), "--queue"),
            "--cache" => config.cache_capacity = parse(&value("--cache"), "--cache"),
            "--no-warm" => warm = false,
            "--trace-out" => trace_out = Some(value("--trace-out")),
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: synthd [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--no-warm] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if config.workers == 0 || config.queue_depth == 0 {
        eprintln!("--workers and --queue must be at least 1");
        std::process::exit(2);
    }
    if trace_out.is_some() {
        obs::set_enabled(true);
    }
    if warm {
        eprintln!("synthd: warming per-family caches...");
        for family in GateFamily::ALL {
            let library = ambipolar::engine::library(family);
            let _ = ambipolar::engine::match_cache(family);
            eprintln!(
                "synthd: {} ready ({} gates)",
                family.label(),
                library.gates.len()
            );
        }
    }
    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthd: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("synthd listening on {}", server.addr());
    eprintln!(
        "synthd: {} workers, queue depth {}, cache capacity {}",
        config.workers, config.queue_depth, config.cache_capacity
    );
    server.wait();
    if let Some(path) = &trace_out {
        match obs::write_trace(path) {
            Ok(()) => eprintln!("synthd: trace written to {path}"),
            Err(e) => eprintln!("synthd: cannot write trace {path}: {e}"),
        }
    }
    eprintln!("synthd: shutdown complete");
}

fn parse(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|e| {
        eprintln!("{flag} {value}: {e}");
        std::process::exit(2);
    })
}
