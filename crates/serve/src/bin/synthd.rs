//! The `synthd` daemon: bind, warm the process-wide caches, serve
//! until a shutdown frame arrives.
//!
//! ```text
//! synthd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--no-warm]
//! ```
//!
//! By default the three per-family characterized libraries and NPN
//! match caches are built *before* the ready line is printed, so the
//! first request ever served already runs warm (`--no-warm` skips
//! this, moving the build cost into the first requests). The ready
//! line — `synthd listening on ADDR` — goes to stdout and is the
//! machine-readable signal harnesses wait for.

use gate_lib::GateFamily;
use serve::{Server, ServerConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:9470".into(),
        ..ServerConfig::default()
    };
    let mut warm = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse(&value("--queue"), "--queue"),
            "--cache" => config.cache_capacity = parse(&value("--cache"), "--cache"),
            "--no-warm" => warm = false,
            other => {
                eprintln!("unknown flag: {other}");
                eprintln!(
                    "usage: synthd [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--no-warm]"
                );
                std::process::exit(2);
            }
        }
    }
    if config.workers == 0 || config.queue_depth == 0 {
        eprintln!("--workers and --queue must be at least 1");
        std::process::exit(2);
    }
    if warm {
        eprintln!("synthd: warming per-family caches...");
        for family in GateFamily::ALL {
            let library = ambipolar::engine::library(family);
            let _ = ambipolar::engine::match_cache(family);
            eprintln!(
                "synthd: {} ready ({} gates)",
                family.label(),
                library.gates.len()
            );
        }
    }
    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("synthd: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!("synthd listening on {}", server.addr());
    eprintln!(
        "synthd: {} workers, queue depth {}, cache capacity {}",
        config.workers, config.queue_depth, config.cache_capacity
    );
    server.wait();
    eprintln!("synthd: shutdown complete");
}

fn parse(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|e| {
        eprintln!("{flag} {value}: {e}");
        std::process::exit(2);
    })
}
