//! The `synthd` message vocabulary and its byte encoding.
//!
//! A frame's payload (see [`crate::wire`]) starts with a one-byte tag.
//! Requests: `1` = job submission carrying a [`JobSpec`], `2` = stats
//! query, `3` = orderly shutdown, `4` = metrics scrape. Responses: `1` =
//! [`Response::Ok`] (mapped netlist + QoR), `2` = [`Response::Busy`]
//! (admission control refused the job — queue full), `3` =
//! [`Response::Error`], `4` = [`Response::Timeout`], `5` =
//! [`Response::Stats`], `6` = [`Response::Metrics`] (Prometheus text).
//!
//! Encoding is hand-rolled little-endian: fixed-width scalars in
//! declaration order, then length-prefixed (`u32`) byte strings. No
//! serializer dependency — the workspace is offline-vendored and the
//! schema is a dozen fields.

use gate_lib::GateFamily;
use techmap::{Objective, Verify};

/// One synthesis-and-map job, as submitted over the wire.
///
/// The circuit travels as **binary AIGER** (`aiger` — see
/// [`aig::to_aiger_binary`]); everything else is knobs mirroring
/// [`ambipolar::pipeline::PipelineConfig`] plus the scheduling-only
/// `timeout_ms`. `name` is a client-chosen label echoed into the QoR
/// document; it does not influence the computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Target gate family.
    pub family: GateFamily,
    /// Mapping objective.
    pub objective: Objective,
    /// Cut width for the mapper (`2..=6`).
    pub cut_k: u8,
    /// Priority cuts stored per node (0 = mapper default).
    pub max_cuts: u8,
    /// Post-mapping verification.
    pub verify: Verify,
    /// Choice-aware mapping (synthesis collects structural choices).
    pub choices: bool,
    /// Random patterns for power estimation.
    pub patterns: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Per-request deadline measured from admission, milliseconds.
    /// `0` disables the deadline.
    pub timeout_ms: u64,
    /// Synthesis flow script (see [`aig::Flow`]).
    pub flow: String,
    /// Client-chosen circuit label, echoed in the QoR document.
    pub name: String,
    /// The circuit, binary AIGER.
    pub aiger: Vec<u8>,
}

/// A client→server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run one job.
    Job(JobSpec),
    /// Return the server's lifetime statistics as JSON.
    Stats,
    /// Stop accepting work and exit once in-flight jobs drain.
    Shutdown,
    /// Return the process metrics registry in the Prometheus text
    /// exposition format.
    Metrics,
}

/// A server→client message. Exactly one per request, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The job ran to completion.
    Ok {
        /// Server-assigned request id (monotonically increasing per
        /// accepted request) — correlates this response with the
        /// server-side root span and telemetry.
        request_id: u64,
        /// Structural Verilog of the kept netlist
        /// ([`techmap::to_structural_verilog`]).
        netlist_verilog: String,
        /// Deterministic QoR document — a pure function of the job
        /// spec, so resubmissions must produce identical bytes.
        qor_json: String,
        /// Telemetry for this request, split into a `"deterministic"`
        /// section (cache flag + profile counters — byte-stable across
        /// identical warm resubmissions) and a `"timing"` section
        /// (request id, wall clock, queue wait — never stable). Kept
        /// out of `qor_json` so determinism stays checkable.
        telemetry_json: String,
    },
    /// Admission control refused the job: the queue is full. The client
    /// may retry after a backoff.
    Busy,
    /// The job failed (parse error, mapping error, refuted
    /// verification, …).
    Error {
        /// Request id, `0` when the job failed before admission
        /// assigned one (validation of the frame itself).
        request_id: u64,
        /// Human-readable failure description.
        msg: String,
    },
    /// The job's deadline lapsed before it finished.
    Timeout {
        /// Server-assigned request id of the abandoned job.
        request_id: u64,
    },
    /// Lifetime server statistics, JSON.
    Stats {
        /// The document (see `Server` for the schema).
        json: String,
    },
    /// The metrics registry, Prometheus text exposition format.
    Metrics {
        /// The rendered metrics page (see `obs::render_prometheus`).
        text: String,
    },
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the announced structure did.
    Truncated,
    /// An unknown tag or enum code.
    BadTag(&'static str, u8),
    /// A length-prefixed string was not UTF-8.
    BadUtf8(&'static str),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "payload truncated"),
            ProtocolError::BadTag(what, code) => write!(f, "bad {what} code {code}"),
            ProtocolError::BadUtf8(what) => write!(f, "{what} is not UTF-8"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// --- scalar codes ---------------------------------------------------------

fn family_code(f: GateFamily) -> u8 {
    GateFamily::ALL.iter().position(|&g| g == f).unwrap() as u8
}

fn family_from(code: u8) -> Result<GateFamily, ProtocolError> {
    GateFamily::ALL
        .get(code as usize)
        .copied()
        .ok_or(ProtocolError::BadTag("family", code))
}

fn objective_code(o: Objective) -> u8 {
    match o {
        Objective::Delay => 0,
        Objective::Area => 1,
        Objective::Energy => 2,
    }
}

fn objective_from(code: u8) -> Result<Objective, ProtocolError> {
    match code {
        0 => Ok(Objective::Delay),
        1 => Ok(Objective::Area),
        2 => Ok(Objective::Energy),
        c => Err(ProtocolError::BadTag("objective", c)),
    }
}

fn verify_code(v: Verify) -> u8 {
    match v {
        Verify::Off => 0,
        Verify::Sim => 1,
        Verify::Sat => 2,
    }
}

fn verify_from(code: u8) -> Result<Verify, ProtocolError> {
    match code {
        0 => Ok(Verify::Off),
        1 => Ok(Verify::Sim),
        2 => Ok(Verify::Sat),
        c => Err(ProtocolError::BadTag("verify", c)),
    }
}

// --- byte writer / reader -------------------------------------------------

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtocolError::BadUtf8(what))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes(rest))
        }
    }
}

// --- encode / decode ------------------------------------------------------

impl Request {
    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Job(spec) => {
                let mut out = Vec::with_capacity(64 + spec.aiger.len());
                out.push(1);
                out.push(family_code(spec.family));
                out.push(objective_code(spec.objective));
                out.push(spec.cut_k);
                out.push(spec.max_cuts);
                out.push(verify_code(spec.verify));
                out.push(spec.choices as u8);
                put_u64(&mut out, spec.patterns);
                put_u64(&mut out, spec.seed);
                put_u64(&mut out, spec.timeout_ms);
                put_bytes(&mut out, spec.flow.as_bytes());
                put_bytes(&mut out, spec.name.as_bytes());
                put_bytes(&mut out, &spec.aiger);
                out
            }
            Request::Stats => vec![2],
            Request::Shutdown => vec![3],
            Request::Metrics => vec![4],
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on truncation, unknown codes, non-UTF-8
    /// strings, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            1 => {
                let family = family_from(r.u8()?)?;
                let objective = objective_from(r.u8()?)?;
                let cut_k = r.u8()?;
                let max_cuts = r.u8()?;
                let verify = verify_from(r.u8()?)?;
                let choices = r.u8()? != 0;
                Request::Job(JobSpec {
                    family,
                    objective,
                    cut_k,
                    max_cuts,
                    verify,
                    choices,
                    patterns: r.u64()?,
                    seed: r.u64()?,
                    timeout_ms: r.u64()?,
                    flow: r.string("flow")?,
                    name: r.string("name")?,
                    aiger: r.bytes()?,
                })
            }
            2 => Request::Stats,
            3 => Request::Shutdown,
            4 => Request::Metrics,
            t => return Err(ProtocolError::BadTag("request", t)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok {
                request_id,
                netlist_verilog,
                qor_json,
                telemetry_json,
            } => {
                let mut out = Vec::with_capacity(
                    24 + netlist_verilog.len() + qor_json.len() + telemetry_json.len(),
                );
                out.push(1);
                put_u64(&mut out, *request_id);
                put_bytes(&mut out, netlist_verilog.as_bytes());
                put_bytes(&mut out, qor_json.as_bytes());
                put_bytes(&mut out, telemetry_json.as_bytes());
                out
            }
            Response::Busy => vec![2],
            Response::Error { request_id, msg } => {
                let mut out = Vec::with_capacity(16 + msg.len());
                out.push(3);
                put_u64(&mut out, *request_id);
                put_bytes(&mut out, msg.as_bytes());
                out
            }
            Response::Timeout { request_id } => {
                let mut out = Vec::with_capacity(9);
                out.push(4);
                put_u64(&mut out, *request_id);
                out
            }
            Response::Stats { json } => {
                let mut out = Vec::with_capacity(8 + json.len());
                out.push(5);
                put_bytes(&mut out, json.as_bytes());
                out
            }
            Response::Metrics { text } => {
                let mut out = Vec::with_capacity(8 + text.len());
                out.push(6);
                put_bytes(&mut out, text.as_bytes());
                out
            }
        }
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Ok {
                request_id: r.u64()?,
                netlist_verilog: r.string("netlist")?,
                qor_json: r.string("qor_json")?,
                telemetry_json: r.string("telemetry_json")?,
            },
            2 => Response::Busy,
            3 => Response::Error {
                request_id: r.u64()?,
                msg: r.string("error message")?,
            },
            4 => Response::Timeout {
                request_id: r.u64()?,
            },
            5 => Response::Stats {
                json: r.string("stats json")?,
            },
            6 => Response::Metrics {
                text: r.string("metrics text")?,
            },
            t => return Err(ProtocolError::BadTag("response", t)),
        };
        r.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            family: GateFamily::Cmos,
            objective: Objective::Energy,
            cut_k: 5,
            max_cuts: 12,
            verify: Verify::Sat,
            choices: true,
            patterns: 640 * 1024,
            seed: 0xDA7E_2010,
            timeout_ms: 30_000,
            flow: "b; rw; rf".into(),
            name: "C1355".into(),
            aiger: vec![1, 2, 3, 250, 251],
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Job(spec()),
            Request::Stats,
            Request::Shutdown,
            Request::Metrics,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let all = [
            Response::Ok {
                request_id: 7,
                netlist_verilog: "module m; endmodule\n".into(),
                qor_json: "{\"gates\": 3}".into(),
                telemetry_json: "{\"timing\": {\"wall_ms\": 1.5}}".into(),
            },
            Response::Busy,
            Response::Error {
                request_id: 8,
                msg: "no".into(),
            },
            Response::Timeout { request_id: 9 },
            Response::Stats { json: "{}".into() },
            Response::Metrics {
                text: "# TYPE x counter\nx 1\n".into(),
            },
        ];
        for resp in all {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(ProtocolError::Truncated));
        assert_eq!(
            Request::decode(&[9]),
            Err(ProtocolError::BadTag("request", 9))
        );
        assert_eq!(
            Request::decode(&[1, 200]),
            Err(ProtocolError::BadTag("family", 200))
        );
        let mut ok = Request::Stats.encode();
        ok.push(0);
        assert_eq!(Request::decode(&ok), Err(ProtocolError::TrailingBytes(1)));
        // A job truncated mid-aiger.
        let full = Request::Job(spec()).encode();
        assert_eq!(
            Request::decode(&full[..full.len() - 2]),
            Err(ProtocolError::Truncated)
        );
    }
}
