//! `synthd` — a warm-cache synthesis server.
//!
//! A long-running daemon that accepts synthesis-and-map jobs over a
//! local TCP socket and runs them on a bounded worker pool. The point
//! is *amortization*: the expensive one-time state — per-family
//! characterized libraries, NPN match caches, the rewrite library, and
//! per-circuit cut databases — is built once and shared across every
//! request, so a stream of jobs pays nothing like `N ×` the one-shot
//! cost. The load harness (`bench` crate's `loadgen` binary) measures
//! exactly that: p50/p99 latency and throughput against a serial
//! one-shot baseline.
//!
//! * [`wire`] — length-prefixed (`u32` LE) framing;
//! * [`protocol`] — the request/response vocabulary ([`JobSpec`],
//!   [`Response`]) and its hand-rolled byte encoding;
//! * [`cache`] — the content-hash-keyed warm cache of synthesized
//!   networks and cut databases;
//! * [`server`] — acceptor, admission control (bounded queue + typed
//!   [`Response::Busy`] backpressure), worker pool, per-request
//!   deadline/telemetry;
//! * [`client`] — the blocking client the load generator and the
//!   tests drive the server with.

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;
pub mod wire;

pub use cache::{content_key, BuildLease, Lookup, SynthCache, SynthEntry};
pub use client::Client;
pub use protocol::{JobSpec, ProtocolError, Request, Response};
pub use server::{job_qor_json, Server, ServerConfig};
