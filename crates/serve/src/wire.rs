//! Length-prefixed framing over a byte stream.
//!
//! Every message — request or response — travels as one *frame*: a
//! little-endian `u32` byte count followed by exactly that many payload
//! bytes. Framing is the only thing this module knows; what the bytes
//! mean is [`crate::protocol`]'s business. The format is trivially
//! incremental (a reader always knows how much to expect next) and
//! self-synchronizing per connection: one request frame in, one
//! response frame out, in order.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. The largest legitimate
/// payload is a binary AIGER of a scale-harness circuit (a few MiB at
/// 100 k ANDs) or the Verilog of its mapped cover; 256 MiB leaves two
/// orders of magnitude of headroom while refusing absurd lengths from a
/// corrupt or hostile peer before any allocation happens.
pub const MAX_FRAME: usize = 256 << 20;

/// Writes one frame: length prefix, payload, flush.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, returning its payload.
///
/// # Errors
///
/// Propagates I/O errors (including a clean EOF before the length
/// prefix, surfaced as [`io::ErrorKind::UnexpectedEof`]); rejects
/// lengths over [`MAX_FRAME`] with [`io::ErrorKind::InvalidData`]
/// before allocating.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xFF; 1000]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xFF; 1000]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
