//! End-to-end `synthd` behavior over real sockets: determinism of
//! concurrent resubmission (bit-identical netlists and QoR documents,
//! equal to the in-process pipeline path), warm-cache amortization
//! (per-family libraries built at most once per process, content-hash
//! hits on resubmission), typed backpressure, per-request timeout,
//! error surfaces, request-ID allocation, byte-stable deterministic
//! telemetry, and per-request span/counter attribution under
//! concurrency.

use ambipolar::engine;
use ambipolar::pipeline::{mapper_cut_db, run_job, PipelineConfig};
use gate_lib::GateFamily;
use serve::{Client, JobSpec, Response, Server, ServerConfig};
use techmap::{MapConfig, Objective, Verify};

fn catalog_aiger(name: &str) -> Vec<u8> {
    let b = bench_circuits::benchmark_by_name(name).expect("catalog circuit");
    aig::to_aiger_binary(&b.aig)
}

fn spec(name: &str, family: GateFamily, patterns: u64, verify: Verify) -> JobSpec {
    JobSpec {
        family,
        objective: Objective::Delay,
        cut_k: 6,
        max_cuts: 0,
        verify,
        choices: false,
        patterns,
        seed: 0xDA7E_2010,
        timeout_ms: 0,
        flow: aig::DEFAULT_FLOW.to_owned(),
        name: name.to_owned(),
        aiger: catalog_aiger(name),
    }
}

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        cache_capacity: 8,
    })
    .expect("bind localhost")
}

/// The satellite's core claim: one circuit submitted many ways
/// concurrently produces byte-identical responses, equal to what the
/// in-process pipeline computes, while every per-family cache builds at
/// most once for the whole process.
#[test]
fn concurrent_resubmission_is_deterministic_and_warm() {
    let server = start(4, 32);
    let addr = server.addr();
    let patterns = 1024;

    // Populate the content cache with one synchronous submission per
    // family, so the concurrent wave below is guaranteed warm.
    let mut first: Vec<(GateFamily, String, String)> = Vec::new();
    let mut client = Client::connect(addr).expect("connect");
    for family in GateFamily::ALL {
        match client
            .submit(&spec("C1355", family, patterns, Verify::Sat))
            .expect("submit")
        {
            Response::Ok {
                netlist_verilog,
                qor_json,
                ..
            } => first.push((family, netlist_verilog, qor_json)),
            other => panic!("{family}: expected Ok, got {other:?}"),
        }
    }

    // 3 families × 3 concurrent clients each, all resubmitting the
    // same circuit.
    let responses: Vec<(GateFamily, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = GateFamily::ALL
            .into_iter()
            .flat_map(|family| (0..3).map(move |_| family))
            .map(|family| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    match client
                        .submit(&spec("C1355", family, patterns, Verify::Sat))
                        .expect("submit")
                    {
                        Response::Ok {
                            netlist_verilog,
                            qor_json,
                            telemetry_json,
                            ..
                        } => {
                            assert!(
                                telemetry_json.contains("\"cache_hit\": true"),
                                "{family}: resubmission must hit the warm cache: {telemetry_json}"
                            );
                            (family, netlist_verilog, qor_json)
                        }
                        other => panic!("{family}: expected Ok, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Byte-identity per family, against the first (cold) response.
    for (family, netlist, qor) in &responses {
        let (_, first_netlist, first_qor) = first
            .iter()
            .find(|(f, _, _)| f == family)
            .expect("first response for family");
        assert_eq!(netlist, first_netlist, "{family}: netlist diverged");
        assert_eq!(qor, first_qor, "{family}: QoR document diverged");
    }

    // Equality with the in-process pipeline path: same knobs, same
    // deterministic engine, no server in the loop.
    let input = bench_circuits::benchmark_by_name("C1355")
        .expect("C1355")
        .aig;
    let pipeline = PipelineConfig {
        patterns: patterns as usize,
        seed: 0xDA7E_2010,
        verify: Verify::Sat,
        map: MapConfig::default(),
        ..PipelineConfig::default()
    };
    let flow = engine::parse_flow(&pipeline).expect("default flow parses");
    let (synthesized, choices) = engine::synthesize_with_choices(&flow, &input, &pipeline);
    for family in GateFamily::ALL {
        let library = engine::library(family);
        let mut db = mapper_cut_db(&pipeline.map);
        let job = run_job(
            &synthesized,
            choices.as_ref(),
            library,
            &pipeline,
            &mut db,
            None,
        )
        .expect("in-process job");
        let expected_qor = serve::job_qor_json(
            &spec("C1355", family, patterns, Verify::Sat),
            synthesized.and_count(),
            &job,
        );
        let expected_netlist = techmap::to_structural_verilog(&job.netlist, library, "C1355");
        let (_, netlist, qor) = first
            .iter()
            .find(|(f, _, _)| *f == family)
            .expect("family response");
        assert_eq!(qor, &expected_qor, "{family}: server QoR != in-process QoR");
        assert_eq!(
            netlist, &expected_netlist,
            "{family}: server netlist != in-process netlist"
        );
    }

    // Warm-cache accounting. Build counters are process-wide: even
    // with every test in this binary running, each family's library /
    // match cache characterizes at most once, the rewrite library at
    // most once.
    let stats = client.stats().expect("stats");
    assert!(
        engine::characterization_count() <= GateFamily::ALL.len(),
        "libraries must characterize once per family: {stats}"
    );
    assert!(
        engine::match_cache_build_count() <= GateFamily::ALL.len(),
        "match caches must build once per family: {stats}"
    );
    assert!(
        engine::rewrite_library_build_count() <= 1,
        "the rewrite library must build once: {stats}"
    );
    let hits: u64 = json_u64(&stats, "cache_hits");
    assert!(hits >= 9, "9 warm resubmissions must all hit: {stats}");
    assert_eq!(json_u64(&stats, "jobs_ok"), 12, "{stats}");
    assert_eq!(json_u64(&stats, "jobs_error"), 0, "{stats}");
    server.shutdown();
}

/// Admission control: a full queue answers `Busy` immediately instead
/// of queueing unboundedly.
#[test]
fn full_queue_reports_busy() {
    let server = start(1, 1);
    let addr = server.addr();
    // Slow enough that 6 simultaneous arrivals cannot drain: C6288 is
    // the catalog's largest circuit.
    let results: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .submit(&spec("C6288", GateFamily::Cmos, 1 << 14, Verify::Off))
                        .expect("submit")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let ok = results
        .iter()
        .filter(|r| matches!(r, Response::Ok { .. }))
        .count();
    let busy = results
        .iter()
        .filter(|r| matches!(r, Response::Busy))
        .count();
    assert_eq!(ok + busy, 6, "only Ok or Busy expected: {results:?}");
    assert!(ok >= 1, "at least the running job completes");
    assert!(
        busy >= 1,
        "with 1 worker + depth-1 queue, 6 simultaneous jobs must trip admission control"
    );
    server.shutdown();
}

/// Per-request deadlines: a 1 ms budget on a real circuit lapses at a
/// stage boundary and reports `Timeout`, not a hang and not `Ok`.
#[test]
fn lapsed_deadline_reports_timeout() {
    let server = start(2, 8);
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut job = spec("C6288", GateFamily::Cmos, 1 << 12, Verify::Off);
    job.timeout_ms = 1;
    match client.submit(&job).expect("submit") {
        Response::Timeout { .. } => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    server.shutdown();
}

/// Malformed inputs come back as typed errors, not dropped connections
/// or worker crashes — and the server keeps serving afterwards.
#[test]
fn bad_inputs_are_typed_errors() {
    let server = start(2, 8);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let mut bad_aiger = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_aiger.aiger = b"not an aiger file".to_vec();
    assert!(
        matches!(client.submit(&bad_aiger).expect("submit"), Response::Error { msg, .. } if msg.contains("AIGER")),
        "garbage AIGER must be a typed error"
    );

    let mut bad_k = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_k.cut_k = 9;
    assert!(
        matches!(client.submit(&bad_k).expect("submit"), Response::Error { msg, .. } if msg.contains("cut_k")),
        "out-of-range cut_k must be a typed error"
    );

    let mut bad_flow = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_flow.flow = "b; frobnicate".into();
    assert!(
        matches!(
            client.submit(&bad_flow).expect("submit"),
            Response::Error { .. }
        ),
        "a malformed flow script must be a typed error"
    );

    // The same connection still serves good jobs.
    assert!(
        matches!(
            client
                .submit(&spec("t481", GateFamily::Cmos, 256, Verify::Sim))
                .expect("submit"),
            Response::Ok { .. }
        ),
        "the server must keep serving after rejecting bad jobs"
    );
    server.shutdown();
}

/// Orderly shutdown over the wire: the final stats come back, and the
/// listener stops accepting.
#[test]
fn wire_shutdown_stops_the_server() {
    let server = start(1, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.shutdown().expect("shutdown handshake");
    assert!(
        stats.contains("\"jobs_ok\""),
        "final stats document: {stats}"
    );
    server.wait(); // joins — must not hang
                   // The listener is gone; a fresh connection must fail (immediately
                   // or on first use).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.stats().is_err(),
    };
    assert!(refused, "a shut-down server must not answer");
}

/// The telemetry split: the `"deterministic"` section (cache flag +
/// per-job counters) must be byte-identical across warm resubmissions
/// of an identical spec, while `"timing"` is free to vary.
#[test]
fn warm_telemetry_deterministic_section_is_byte_stable() {
    let server = start(2, 8);
    let mut client = Client::connect(server.addr()).expect("connect");
    let job = spec("t481", GateFamily::CntfetGeneralized, 512, Verify::Sim);
    let telemetry = |response: Response| -> String {
        match response {
            Response::Ok { telemetry_json, .. } => telemetry_json,
            other => panic!("expected Ok, got {other:?}"),
        }
    };
    let cold = telemetry(client.submit(&job).expect("submit"));
    let warm_a = telemetry(client.submit(&job).expect("submit"));
    let warm_b = telemetry(client.submit(&job).expect("submit"));
    assert!(
        cold.contains("\"cache_hit\": false") && warm_a.contains("\"cache_hit\": true"),
        "first submission cold, second warm: {cold} / {warm_a}"
    );
    assert_eq!(
        deterministic_section(&warm_a),
        deterministic_section(&warm_b),
        "warm resubmissions must agree byte-for-byte on the deterministic section"
    );
    // The timing section still carries the per-request identity.
    assert!(
        warm_a.contains("\"timing\": {\"request_id\": 2,"),
        "{warm_a}"
    );
    assert!(
        warm_b.contains("\"timing\": {\"request_id\": 3,"),
        "{warm_b}"
    );
    server.shutdown();
}

/// Request IDs: allocated densely at admission, strictly monotone, and
/// echoed both on the wire frame (`Ok` and `Error` alike) and inside
/// the telemetry timing section.
#[test]
fn request_ids_are_dense_and_echoed() {
    let server = start(1, 4);
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut bad_flow = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_flow.flow = "b; frobnicate".into();
    let id1 = match client.submit(&bad_flow).expect("submit") {
        Response::Error { request_id, .. } => request_id,
        other => panic!("expected Error, got {other:?}"),
    };
    let good = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    let (id2, telemetry) = match client.submit(&good).expect("submit") {
        Response::Ok {
            request_id,
            telemetry_json,
            ..
        } => (request_id, telemetry_json),
        other => panic!("expected Ok, got {other:?}"),
    };
    let id3 = match client.submit(&good).expect("submit") {
        Response::Ok { request_id, .. } => request_id,
        other => panic!("expected Ok, got {other:?}"),
    };
    // A private server and one serial connection: every submission is
    // admitted, so the sequence is exactly 1, 2, 3.
    assert_eq!([id1, id2, id3], [1, 2, 3]);
    assert!(
        telemetry.contains(&format!("\"request_id\": {id2},")),
        "telemetry must echo the wire request id: {telemetry}"
    );
    server.shutdown();
}

/// Two different circuits running simultaneously on the shared rayon
/// pool each see exactly their own span tree (root `request` span with
/// that job's `request_id`, its own nested synthesize/flow/map/verify
/// children) and their own counter deltas (deterministic telemetry
/// equal to a serial run of the same circuit).
#[test]
fn concurrent_jobs_attribute_spans_and_counters() {
    let job_a = spec("t481", GateFamily::Cmos, 512, Verify::Sim);
    let job_b = spec("C1355", GateFamily::CntfetGeneralized, 512, Verify::Sim);

    // Serial baselines first, on their own server (fresh content
    // cache), with tracing still off.
    let serial = |job: &JobSpec| -> String {
        let server = start(1, 4);
        let mut client = Client::connect(server.addr()).expect("connect");
        let telemetry = match client.submit(job).expect("submit") {
            Response::Ok { telemetry_json, .. } => telemetry_json,
            other => panic!("expected Ok, got {other:?}"),
        };
        server.shutdown();
        telemetry
    };
    let serial_a = serial(&job_a);
    let serial_b = serial(&job_b);
    assert_ne!(
        deterministic_section(&serial_a),
        deterministic_section(&serial_b),
        "distinct circuits must produce distinct counter profiles"
    );

    // Now both jobs at once on one two-worker server, spans on. Other
    // tests in this binary may run concurrently and add spans to the
    // process-wide ring; everything below filters by request id.
    obs::set_enabled(true);
    let server = start(2, 8);
    let addr = server.addr();
    let submit = |job: &JobSpec| -> (u64, String) {
        let mut client = Client::connect(addr).expect("connect");
        match client.submit(job).expect("submit") {
            Response::Ok {
                request_id,
                telemetry_json,
                ..
            } => (request_id, telemetry_json),
            other => panic!("expected Ok, got {other:?}"),
        }
    };
    let ((id_a, conc_a), (id_b, conc_b)) = std::thread::scope(|scope| {
        let a = scope.spawn(|| submit(&job_a));
        let b = scope.spawn(|| submit(&job_b));
        (a.join().expect("job a"), b.join().expect("job b"))
    });
    server.shutdown();
    obs::set_enabled(false);
    assert_ne!(id_a, id_b, "concurrent requests get distinct ids");

    // Counter attribution: interleaving must not leak one job's work
    // into the other's telemetry.
    assert_eq!(
        deterministic_section(&conc_a),
        deterministic_section(&serial_a),
        "job A's counters under concurrency must equal its serial run"
    );
    assert_eq!(
        deterministic_section(&conc_b),
        deterministic_section(&serial_b),
        "job B's counters under concurrency must equal its serial run"
    );

    // Span attribution: each request's root span owns its own subtree.
    let trace = obs::export_trace();
    let events: Vec<(String, u64, u64)> = trace
        .lines()
        .filter(|l| l.starts_with("{\"name\":"))
        .map(|l| {
            (
                trace_str(l, "name"),
                trace_u64(l, "id"),
                trace_u64(l, "parent"),
            )
        })
        .collect();
    for request_id in [id_a, id_b] {
        let root_line = trace
            .lines()
            .find(|l| {
                l.starts_with("{\"name\":\"request\"") && trace_u64(l, "request_id") == request_id
            })
            .unwrap_or_else(|| panic!("no request root span for id {request_id} in {trace}"));
        let root = trace_u64(root_line, "id");
        let descendants = descendants_of(root, &events);
        for needle in ["synthesize", "map", "verify"] {
            assert!(
                descendants.iter().any(|(name, _, _)| name == needle),
                "request {request_id}: missing `{needle}` under its root span"
            );
        }
        assert!(
            descendants
                .iter()
                .any(|(name, _, _)| name.starts_with("flow/")),
            "request {request_id}: missing flow pass spans under its root"
        );
    }
    // Parent links form a forest, so the two subtrees are disjoint
    // unless one request's root nested under the other — the exact
    // leak the worker-thread span restore prevents.
    for (name, _, parent) in &events {
        assert_ne!(
            (name.as_str(), *parent != 0),
            ("request", true),
            "a request root span must never have a parent"
        );
    }
}

/// The `"deterministic"` object of the split telemetry document.
fn deterministic_section(telemetry: &str) -> &str {
    let start = telemetry
        .find("\"deterministic\": ")
        .unwrap_or_else(|| panic!("no deterministic section in {telemetry}"));
    let end = telemetry
        .find(", \"timing\"")
        .unwrap_or_else(|| panic!("no timing section in {telemetry}"));
    &telemetry[start..end]
}

/// `"key":N` out of one trace-event line (0 when absent).
fn trace_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let Some(start) = line.find(&pat).map(|i| i + pat.len()) else {
        return 0;
    };
    line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

/// `"key":"value"` out of one trace-event line.
fn trace_str(line: &str, key: &str) -> String {
    let pat = format!("\"{key}\":\"");
    let Some(start) = line.find(&pat).map(|i| i + pat.len()) else {
        return String::new();
    };
    line[start..].chars().take_while(|c| *c != '"').collect()
}

/// Transitive children of `root` in `(name, id, parent)` event tuples.
fn descendants_of(root: u64, events: &[(String, u64, u64)]) -> Vec<(String, u64, u64)> {
    let mut frontier = vec![root];
    let mut out = Vec::new();
    while let Some(id) = frontier.pop() {
        for e in events.iter().filter(|(_, _, parent)| *parent == id) {
            // Instant events carry id 0 and cannot have children;
            // re-enqueueing 0 would walk every top-level span forever.
            if e.1 != 0 {
                frontier.push(e.1);
            }
            out.push(e.clone());
        }
    }
    out
}

/// Pulls `"key": N` out of a flat JSON document (the stats schema is
/// hand-rolled and flat, so a parser dependency is overkill).
fn json_u64(doc: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let start = doc.find(&pat).unwrap_or_else(|| panic!("{key} in {doc}")) + pat.len();
    doc[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("{key}: {e}"))
}
