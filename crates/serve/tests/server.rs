//! End-to-end `synthd` behavior over real sockets: determinism of
//! concurrent resubmission (bit-identical netlists and QoR documents,
//! equal to the in-process pipeline path), warm-cache amortization
//! (per-family libraries built at most once per process, content-hash
//! hits on resubmission), typed backpressure, per-request timeout, and
//! error surfaces.

use ambipolar::engine;
use ambipolar::pipeline::{mapper_cut_db, run_job, PipelineConfig};
use gate_lib::GateFamily;
use serve::{Client, JobSpec, Response, Server, ServerConfig};
use techmap::{MapConfig, Objective, Verify};

fn catalog_aiger(name: &str) -> Vec<u8> {
    let b = bench_circuits::benchmark_by_name(name).expect("catalog circuit");
    aig::to_aiger_binary(&b.aig)
}

fn spec(name: &str, family: GateFamily, patterns: u64, verify: Verify) -> JobSpec {
    JobSpec {
        family,
        objective: Objective::Delay,
        cut_k: 6,
        max_cuts: 0,
        verify,
        choices: false,
        patterns,
        seed: 0xDA7E_2010,
        timeout_ms: 0,
        flow: aig::DEFAULT_FLOW.to_owned(),
        name: name.to_owned(),
        aiger: catalog_aiger(name),
    }
}

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        cache_capacity: 8,
    })
    .expect("bind localhost")
}

/// The satellite's core claim: one circuit submitted many ways
/// concurrently produces byte-identical responses, equal to what the
/// in-process pipeline computes, while every per-family cache builds at
/// most once for the whole process.
#[test]
fn concurrent_resubmission_is_deterministic_and_warm() {
    let server = start(4, 32);
    let addr = server.addr();
    let patterns = 1024;

    // Populate the content cache with one synchronous submission per
    // family, so the concurrent wave below is guaranteed warm.
    let mut first: Vec<(GateFamily, String, String)> = Vec::new();
    let mut client = Client::connect(addr).expect("connect");
    for family in GateFamily::ALL {
        match client
            .submit(&spec("C1355", family, patterns, Verify::Sat))
            .expect("submit")
        {
            Response::Ok {
                netlist_verilog,
                qor_json,
                ..
            } => first.push((family, netlist_verilog, qor_json)),
            other => panic!("{family}: expected Ok, got {other:?}"),
        }
    }

    // 3 families × 3 concurrent clients each, all resubmitting the
    // same circuit.
    let responses: Vec<(GateFamily, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = GateFamily::ALL
            .into_iter()
            .flat_map(|family| (0..3).map(move |_| family))
            .map(|family| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    match client
                        .submit(&spec("C1355", family, patterns, Verify::Sat))
                        .expect("submit")
                    {
                        Response::Ok {
                            netlist_verilog,
                            qor_json,
                            telemetry_json,
                        } => {
                            assert!(
                                telemetry_json.contains("\"cache_hit\": true"),
                                "{family}: resubmission must hit the warm cache: {telemetry_json}"
                            );
                            (family, netlist_verilog, qor_json)
                        }
                        other => panic!("{family}: expected Ok, got {other:?}"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Byte-identity per family, against the first (cold) response.
    for (family, netlist, qor) in &responses {
        let (_, first_netlist, first_qor) = first
            .iter()
            .find(|(f, _, _)| f == family)
            .expect("first response for family");
        assert_eq!(netlist, first_netlist, "{family}: netlist diverged");
        assert_eq!(qor, first_qor, "{family}: QoR document diverged");
    }

    // Equality with the in-process pipeline path: same knobs, same
    // deterministic engine, no server in the loop.
    let input = bench_circuits::benchmark_by_name("C1355")
        .expect("C1355")
        .aig;
    let pipeline = PipelineConfig {
        patterns: patterns as usize,
        seed: 0xDA7E_2010,
        verify: Verify::Sat,
        map: MapConfig::default(),
        ..PipelineConfig::default()
    };
    let flow = engine::parse_flow(&pipeline).expect("default flow parses");
    let (synthesized, choices) = engine::synthesize_with_choices(&flow, &input, &pipeline);
    for family in GateFamily::ALL {
        let library = engine::library(family);
        let mut db = mapper_cut_db(&pipeline.map);
        let job = run_job(
            &synthesized,
            choices.as_ref(),
            library,
            &pipeline,
            &mut db,
            None,
        )
        .expect("in-process job");
        let expected_qor = serve::job_qor_json(
            &spec("C1355", family, patterns, Verify::Sat),
            synthesized.and_count(),
            &job,
        );
        let expected_netlist = techmap::to_structural_verilog(&job.netlist, library, "C1355");
        let (_, netlist, qor) = first
            .iter()
            .find(|(f, _, _)| *f == family)
            .expect("family response");
        assert_eq!(qor, &expected_qor, "{family}: server QoR != in-process QoR");
        assert_eq!(
            netlist, &expected_netlist,
            "{family}: server netlist != in-process netlist"
        );
    }

    // Warm-cache accounting. Build counters are process-wide: even
    // with every test in this binary running, each family's library /
    // match cache characterizes at most once, the rewrite library at
    // most once.
    let stats = client.stats().expect("stats");
    assert!(
        engine::characterization_count() <= GateFamily::ALL.len(),
        "libraries must characterize once per family: {stats}"
    );
    assert!(
        engine::match_cache_build_count() <= GateFamily::ALL.len(),
        "match caches must build once per family: {stats}"
    );
    assert!(
        engine::rewrite_library_build_count() <= 1,
        "the rewrite library must build once: {stats}"
    );
    let hits: u64 = json_u64(&stats, "cache_hits");
    assert!(hits >= 9, "9 warm resubmissions must all hit: {stats}");
    assert_eq!(json_u64(&stats, "jobs_ok"), 12, "{stats}");
    assert_eq!(json_u64(&stats, "jobs_error"), 0, "{stats}");
    server.shutdown();
}

/// Admission control: a full queue answers `Busy` immediately instead
/// of queueing unboundedly.
#[test]
fn full_queue_reports_busy() {
    let server = start(1, 1);
    let addr = server.addr();
    // Slow enough that 6 simultaneous arrivals cannot drain: C6288 is
    // the catalog's largest circuit.
    let results: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .submit(&spec("C6288", GateFamily::Cmos, 1 << 14, Verify::Off))
                        .expect("submit")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let ok = results
        .iter()
        .filter(|r| matches!(r, Response::Ok { .. }))
        .count();
    let busy = results
        .iter()
        .filter(|r| matches!(r, Response::Busy))
        .count();
    assert_eq!(ok + busy, 6, "only Ok or Busy expected: {results:?}");
    assert!(ok >= 1, "at least the running job completes");
    assert!(
        busy >= 1,
        "with 1 worker + depth-1 queue, 6 simultaneous jobs must trip admission control"
    );
    server.shutdown();
}

/// Per-request deadlines: a 1 ms budget on a real circuit lapses at a
/// stage boundary and reports `Timeout`, not a hang and not `Ok`.
#[test]
fn lapsed_deadline_reports_timeout() {
    let server = start(2, 8);
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut job = spec("C6288", GateFamily::Cmos, 1 << 12, Verify::Off);
    job.timeout_ms = 1;
    match client.submit(&job).expect("submit") {
        Response::Timeout => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    server.shutdown();
}

/// Malformed inputs come back as typed errors, not dropped connections
/// or worker crashes — and the server keeps serving afterwards.
#[test]
fn bad_inputs_are_typed_errors() {
    let server = start(2, 8);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let mut bad_aiger = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_aiger.aiger = b"not an aiger file".to_vec();
    assert!(
        matches!(client.submit(&bad_aiger).expect("submit"), Response::Error { msg } if msg.contains("AIGER")),
        "garbage AIGER must be a typed error"
    );

    let mut bad_k = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_k.cut_k = 9;
    assert!(
        matches!(client.submit(&bad_k).expect("submit"), Response::Error { msg } if msg.contains("cut_k")),
        "out-of-range cut_k must be a typed error"
    );

    let mut bad_flow = spec("t481", GateFamily::Cmos, 256, Verify::Off);
    bad_flow.flow = "b; frobnicate".into();
    assert!(
        matches!(
            client.submit(&bad_flow).expect("submit"),
            Response::Error { .. }
        ),
        "a malformed flow script must be a typed error"
    );

    // The same connection still serves good jobs.
    assert!(
        matches!(
            client
                .submit(&spec("t481", GateFamily::Cmos, 256, Verify::Sim))
                .expect("submit"),
            Response::Ok { .. }
        ),
        "the server must keep serving after rejecting bad jobs"
    );
    server.shutdown();
}

/// Orderly shutdown over the wire: the final stats come back, and the
/// listener stops accepting.
#[test]
fn wire_shutdown_stops_the_server() {
    let server = start(1, 4);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.shutdown().expect("shutdown handshake");
    assert!(
        stats.contains("\"jobs_ok\""),
        "final stats document: {stats}"
    );
    server.wait(); // joins — must not hang
                   // The listener is gone; a fresh connection must fail (immediately
                   // or on first use).
    let refused = match Client::connect(addr) {
        Err(_) => true,
        Ok(mut c) => c.stats().is_err(),
    };
    assert!(refused, "a shut-down server must not answer");
}

/// Pulls `"key": N` out of a flat JSON document (the stats schema is
/// hand-rolled and flat, so a parser dependency is overkill).
fn json_u64(doc: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let start = doc.find(&pat).unwrap_or_else(|| panic!("{key} in {doc}")) + pat.len();
    doc[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|e| panic!("{key}: {e}"))
}
