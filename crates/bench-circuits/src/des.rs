//! A DES-style round function — the `des` stand-in ("data encryption").
//!
//! Structure follows the Feistel round of DES: a 32-bit half-block is
//! expanded to 48 bits, XOR-ed with a round key, pushed through eight
//! 6-in/4-out S-boxes and a permutation, then XOR-ed into the other half.
//! The S-box tables are fixed pseudo-random (seeded) substitutions, since
//! what matters for mapping/power is the two-level 6-input LUT structure,
//! not the cryptographic values.

use crate::words::{from_truth_table, Word};
use aig::{Aig, Lit};
use logic::TruthTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of S-boxes in a round.
pub const SBOX_COUNT: usize = 8;

/// Deterministic S-box tables: `tables[s][i]` is the 4-bit output of
/// S-box `s` for 6-bit input `i`.
pub fn sbox_tables(seed: u64) -> Vec<[u8; 64]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..SBOX_COUNT)
        .map(|_| {
            let mut t = [0u8; 64];
            for slot in t.iter_mut() {
                *slot = rng.gen_range(0..16) as u8;
            }
            t
        })
        .collect()
}

/// The DES expansion-like map: 32 → 48 bits by duplicating edge bits of
/// each 4-bit group.
fn expand(half: &Word) -> Vec<Lit> {
    let n = half.len();
    debug_assert_eq!(n, 32);
    let mut out = Vec::with_capacity(48);
    for g in 0..8 {
        let base = g * 4;
        out.push(half.bit((base + n - 1) % n));
        for k in 0..4 {
            out.push(half.bit(base + k));
        }
        out.push(half.bit((base + 4) % n));
    }
    out
}

/// One Feistel round: returns the new (left, right) halves.
pub fn feistel_round(
    aig: &mut Aig,
    left: &Word,
    right: &Word,
    key: &Word,
    tables: &[[u8; 64]],
) -> (Word, Word) {
    assert_eq!(left.len(), 32);
    assert_eq!(right.len(), 32);
    assert_eq!(key.len(), 48);
    let expanded = expand(right);
    let keyed: Vec<Lit> = expanded
        .iter()
        .zip(key.0.iter())
        .map(|(&x, &k)| aig.xor(x, k))
        .collect();
    let mut substituted = Vec::with_capacity(32);
    for (s, table) in tables.iter().enumerate() {
        let ins: Vec<Lit> = keyed[s * 6..(s + 1) * 6].to_vec();
        for bit in 0..4 {
            let tt = TruthTable::from_fn(6, |v| {
                let idx = v
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
                (table[idx] >> bit) & 1 == 1
            });
            substituted.push(from_truth_table(aig, tt, &ins));
        }
    }
    // P-permutation: a fixed bit shuffle (bit-reversal within groups).
    let permuted: Vec<Lit> = (0..32).map(|i| substituted[(i * 7 + 3) % 32]).collect();
    let new_right: Vec<Lit> = left
        .0
        .iter()
        .zip(permuted.iter())
        .map(|(&l, &p)| aig.xor(l, p))
        .collect();
    (right.clone(), Word(new_right))
}

/// The benchmark circuit: one keyed round over a 64-bit block.
pub fn des_circuit() -> Aig {
    let mut aig = Aig::new();
    let left = Word::inputs(&mut aig, 32);
    let right = Word::inputs(&mut aig, 32);
    let key = Word::inputs(&mut aig, 48);
    let tables = sbox_tables(0xDE5_0001);
    let (l1, r1) = feistel_round(&mut aig, &left, &right, &key, &tables);
    l1.output(&mut aig);
    r1.output(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::sim::evaluate;

    #[test]
    fn sbox_tables_are_deterministic() {
        let a = sbox_tables(7);
        let b = sbox_tables(7);
        assert_eq!(a, b);
        let c = sbox_tables(8);
        assert_ne!(a, c);
        for t in &a {
            assert!(t.iter().all(|&v| v < 16));
        }
    }

    #[test]
    fn round_is_a_feistel_permutation() {
        // Feistel structure: applying the round with the same key twice on
        // (L, R) and swapping recovers the original — verify the core
        // property new_left == old_right instead (cheap structural check).
        let aig = des_circuit();
        assert_eq!(aig.input_count(), 112);
        assert_eq!(aig.output_count(), 64);
        // New left must equal old right for any input.
        let mut inputs = vec![false; 112];
        inputs[35] = true; // right bit 3
        inputs[40] = true; // right bit 8
        let out = evaluate(&aig, &inputs);
        for i in 0..32 {
            assert_eq!(out[i], inputs[32 + i], "new L bit {i} = old R bit {i}");
        }
    }

    #[test]
    fn key_changes_output() {
        let aig = des_circuit();
        let zero = vec![false; 112];
        let out0 = evaluate(&aig, &zero);
        let mut keyed = zero.clone();
        keyed[64] = true; // key bit 0
        let out1 = evaluate(&aig, &keyed);
        assert_ne!(out0[32..], out1[32..], "key must affect the new right half");
    }

    #[test]
    fn sbox_logic_matches_table() {
        // Build a single S-box in isolation and check it against its table.
        let tables = sbox_tables(99);
        let mut aig = Aig::new();
        let ins: Vec<Lit> = (0..6).map(|_| aig.input()).collect();
        for bit in 0..4 {
            let tt = TruthTable::from_fn(6, |v| {
                let idx = v
                    .iter()
                    .enumerate()
                    .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
                (tables[0][idx] >> bit) & 1 == 1
            });
            let f = from_truth_table(&mut aig, tt, &ins);
            aig.output(f);
        }
        for (i, &expected) in tables[0].iter().enumerate() {
            let bits: Vec<bool> = (0..6).map(|k| (i >> k) & 1 == 1).collect();
            let out = evaluate(&aig, &bits);
            let got = out
                .iter()
                .enumerate()
                .fold(0u8, |acc, (k, &b)| acc | ((b as u8) << k));
            assert_eq!(got, expected, "s-box input {i}");
        }
    }
}
