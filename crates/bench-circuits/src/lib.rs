//! Structural generators for the paper's 12 Table-1 benchmark circuits.
//!
//! The original ISCAS'85 / MCNC netlists are distributed artifacts we do
//! not ship; what drives the paper's per-circuit trends is each circuit's
//! *functional class* — XOR-rich multipliers and error-correcting codes
//! benefit most from generalized ambipolar gates, control-dominated ALUs
//! less so. Every generator here produces a functional stand-in of the
//! same class and comparable scale (see `DESIGN.md` for the mapping):
//!
//! | row | paper circuit | stand-in |
//! |---|---|---|
//! | C2670 | ALU and control | 12-bit ALU + comparator/parity control |
//! | C1908 | error correcting | 16-bit Hamming SEC/DED decoder |
//! | C3540 | ALU and control | 16-bit ALU + control |
//! | dalu | dedicated ALU | 16-bit dedicated ALU |
//! | C7552 | ALU and control | 24-bit ALU + control |
//! | C6288 | multiplier | 16×16 array multiplier |
//! | C5315 | ALU and selector | 20-bit ALU + selector |
//! | des | data encryption | DES-style round (E, S-boxes, P, key XOR) |
//! | i10 | logic | seeded mixed-logic block (large) |
//! | t481 | logic | 16-input single-output logic cone |
//! | i8 | logic | seeded mixed-logic block (medium) |
//! | C1355 | error correcting | 32-bit Hamming SEC decoder |

pub mod alu;
pub mod catalog;
pub mod des;
pub mod ecc;
pub mod logicblocks;
pub mod multiplier;
pub mod scale;
pub mod words;

pub use catalog::{benchmark_by_name, table1_benchmarks, Benchmark};
pub use words::Word;
