//! Seeded mixed-logic generators — the `i8`/`i10`/`t481` stand-ins
//! ("logic" rows of Table 1).
//!
//! These MCNC circuits are unstructured multi-level logic. The stand-ins
//! are deterministic (seeded) DAGs mixing AND/OR/XOR/MUX operators in the
//! proportions typical of control logic, plus decoders and comparators,
//! so the mapper sees realistic mixed-polarity cones.

use crate::words::{equal, less_than, parity, Word};
use aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a mixed-logic block.
#[derive(Clone, Copy, Debug)]
pub struct LogicBlockSpec {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Internal operator count before synthesis.
    pub operators: usize,
    /// RNG seed (fixes the circuit).
    pub seed: u64,
    /// XOR share in percent (the "binate-ness" of the block).
    pub xor_percent: u32,
}

/// Generates a deterministic mixed-logic DAG.
pub fn logic_block(spec: LogicBlockSpec) -> Aig {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut aig = Aig::new();
    let inputs: Vec<Lit> = (0..spec.inputs).map(|_| aig.input()).collect();
    let mut nets: Vec<Lit> = inputs.clone();
    for _ in 0..spec.operators {
        let pick = |rng: &mut StdRng, nets: &[Lit]| {
            let l = nets[rng.gen_range(0..nets.len())];
            if rng.gen_bool(0.3) {
                l.not()
            } else {
                l
            }
        };
        let a = pick(&mut rng, &nets);
        let b = pick(&mut rng, &nets);
        let roll = rng.gen_range(0..100u32);
        let f = if roll < spec.xor_percent {
            aig.xor(a, b)
        } else if roll < spec.xor_percent + 35 {
            aig.and(a, b)
        } else if roll < spec.xor_percent + 70 {
            aig.or(a, b)
        } else {
            let s = pick(&mut rng, &nets);
            aig.mux(s, a, b)
        };
        nets.push(f);
    }
    // Outputs: XOR-combine several late nets so every output cone is wide
    // and live (a single random tap can collapse under strashing); retry
    // picks that fold to a constant.
    let half = nets.len() / 2;
    for _ in 0..spec.outputs {
        let mut o = Lit::FALSE;
        for _ in 0..16 {
            let a = nets[rng.gen_range(half..nets.len())];
            let b = nets[rng.gen_range(half..nets.len())];
            let c = nets[rng.gen_range(0..nets.len())];
            let t = aig.xor(a, b);
            o = aig.xor(t, c);
            if o.node() != 0 {
                break;
            }
        }
        assert!(o.node() != 0, "could not build a non-constant output");
        aig.output(o);
    }
    aig.cleanup()
}

/// The `i10`-class block: large mixed logic with comparators and parity.
pub fn i10_circuit() -> Aig {
    let mut aig = base_with_datapath(48, 0x1010, 30);
    let extra = logic_glue(&mut aig, 2800, 0x0010_1055, 25);
    for l in extra {
        aig.output(l);
    }
    aig.cleanup()
}

/// The `i8`-class block: medium mixed logic with decoders.
pub fn i8_circuit() -> Aig {
    let mut aig = base_with_datapath(32, 0x0808, 20);
    let extra = logic_glue(&mut aig, 1700, 0x0008_0855, 20);
    for l in extra {
        aig.output(l);
    }
    aig.cleanup()
}

/// The `t481`-class block: a single 16-input output cone. The output
/// XOR-combines many late nets so the cone spans most of the block (the
/// real t481 is a dense single-output function).
pub fn t481_circuit() -> Aig {
    let mut rng = StdRng::seed_from_u64(0x0481);
    let mut aig = Aig::new();
    let inputs: Vec<Lit> = (0..16).map(|_| aig.input()).collect();
    let mut nets: Vec<Lit> = inputs.clone();
    for _ in 0..1600 {
        let pick = |rng: &mut StdRng, nets: &[Lit]| {
            let l = nets[rng.gen_range(0..nets.len())];
            if rng.gen_bool(0.3) {
                l.not()
            } else {
                l
            }
        };
        let a = pick(&mut rng, &nets);
        let b = pick(&mut rng, &nets);
        let roll = rng.gen_range(0..100u32);
        let f = if roll < 18 {
            aig.xor(a, b)
        } else if roll < 55 {
            aig.and(a, b)
        } else {
            aig.or(a, b)
        };
        nets.push(f);
    }
    // Wide output: XOR of a dozen late nets.
    let half = nets.len() / 2;
    let taps: Vec<Lit> = (0..12)
        .map(|_| nets[rng.gen_range(half..nets.len())])
        .collect();
    let out = aig.xor_many(&taps);
    aig.output(out);
    aig.cleanup()
}

/// Shared scaffold: datapath-flavoured comparisons over the inputs.
fn base_with_datapath(inputs: usize, seed: u64, xor_percent: u32) -> Aig {
    let mut aig = Aig::new();
    let ins: Vec<Lit> = (0..inputs).map(|_| aig.input()).collect();
    let half = inputs / 2;
    let a = Word(ins[..half].to_vec());
    let b = Word(ins[half..].to_vec());
    let eq = equal(&mut aig, &a, &b);
    let lt = less_than(&mut aig, &a, &b);
    let pa = parity(&mut aig, &a);
    let pb = parity(&mut aig, &b);
    let px = aig.xor(pa, pb);
    aig.output(eq);
    aig.output(lt);
    aig.output(px);
    let _ = (seed, xor_percent);
    aig
}

/// Adds seeded glue logic over the existing nodes, returning output picks.
fn logic_glue(aig: &mut Aig, operators: usize, seed: u64, xor_percent: u32) -> Vec<Lit> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nets: Vec<Lit> = (0..aig.input_count())
        .map(|i| {
            let node = aig.input_nodes()[i];
            Lit::new(node, false)
        })
        .collect();
    for _ in 0..operators {
        let a = nets[rng.gen_range(0..nets.len())];
        let b = nets[rng.gen_range(0..nets.len())];
        let roll = rng.gen_range(0..100u32);
        let f = if roll < xor_percent {
            aig.xor(a, b)
        } else if roll < 60 {
            aig.and(a, b.not())
        } else {
            aig.or(a, b)
        };
        nets.push(f);
    }
    // XOR-combine late nets into live output candidates, skipping any pick
    // that folds to a constant under strashing.
    let half = nets.len() / 2;
    let wanted = 24.min(operators / 20);
    let mut outs = Vec::with_capacity(wanted);
    while outs.len() < wanted {
        let a = nets[rng.gen_range(half..nets.len())];
        let b = nets[rng.gen_range(0..nets.len())];
        let o = aig.xor(a, b);
        if o.node() != 0 {
            outs.push(o);
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_deterministic() {
        let spec = LogicBlockSpec {
            inputs: 12,
            outputs: 6,
            operators: 100,
            seed: 42,
            xor_percent: 25,
        };
        let a = logic_block(spec);
        let b = logic_block(spec);
        assert_eq!(a.and_count(), b.and_count());
        assert!(
            aig::check::equivalent(&a, &b, 5, 8),
            "same seed ⇒ same function"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            logic_block(LogicBlockSpec {
                inputs: 12,
                outputs: 6,
                operators: 100,
                seed,
                xor_percent: 25,
            })
        };
        let a = mk(1);
        let b = mk(2);
        assert!(!aig::check::equivalent(&a, &b, 5, 8));
    }

    #[test]
    fn named_blocks_have_expected_interfaces() {
        let i10 = i10_circuit();
        assert_eq!(i10.input_count(), 48);
        assert!(i10.output_count() >= 20);
        assert!(i10.and_count() > 300);

        let i8c = i8_circuit();
        assert_eq!(i8c.input_count(), 32);
        assert!(i8c.and_count() > 200);

        let t481 = t481_circuit();
        assert_eq!(t481.input_count(), 16);
        assert_eq!(t481.output_count(), 1);
        assert!(t481.and_count() > 100);
    }

    #[test]
    fn outputs_are_live() {
        // The single t481 output must not be constant: across 64 varied
        // random patterns it should produce both polarities.
        let t481 = t481_circuit();
        let mut seed = 0x5eed_1234_u64;
        let inputs: Vec<u64> = (0..16)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            })
            .collect();
        let out = aig::simulate64(&t481, &inputs)[0];
        assert!(
            out != 0 && out != u64::MAX,
            "t481 output looks constant: {out:#x}"
        );
    }
}
