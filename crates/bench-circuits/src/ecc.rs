//! Hamming error-correcting circuits — the C1355/C1908 stand-ins (the
//! paper's "error correcting" rows, heavy in XOR trees).

use crate::words::Word;
use aig::{Aig, Lit};

/// Number of Hamming parity bits for `data_bits` of payload.
pub fn parity_bits(data_bits: usize) -> usize {
    let mut r = 0usize;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// Positions (1-based codeword indices) covered by parity bit `p`.
fn covered(p: usize, codeword_len: usize) -> impl Iterator<Item = usize> {
    (1..=codeword_len).filter(move |&i| i & (1 << p) != 0)
}

/// Builds the Hamming codeword layout: maps 1-based codeword positions to
/// either a parity index or a data index.
#[allow(clippy::needless_range_loop)]
fn layout(data_bits: usize) -> (usize, Vec<Option<usize>>) {
    let r = parity_bits(data_bits);
    let n = data_bits + r;
    let mut map: Vec<Option<usize>> = vec![None; n + 1]; // 1-based
    let mut d = 0usize;
    for (i, slot) in map.iter_mut().enumerate().skip(1) {
        if !i.is_power_of_two() {
            *slot = Some(d);
            d += 1;
        }
    }
    debug_assert_eq!(d, data_bits);
    (r, map)
}

/// Hamming single-error-correcting **decoder**: takes a received codeword
/// (data + parity interleaved in standard positions), computes the
/// syndrome and outputs the corrected data word — the C1355-class
/// circuit.
#[allow(clippy::needless_range_loop)] // `pos` is a 1-based codeword position
pub fn sec_decoder(aig: &mut Aig, codeword: &Word, data_bits: usize) -> Word {
    let (r, map) = layout(data_bits);
    let n = data_bits + r;
    assert_eq!(codeword.len(), n, "codeword width mismatch");
    // Syndrome bit p = XOR of covered positions.
    let syndrome: Vec<Lit> = (0..r)
        .map(|p| {
            let lits: Vec<Lit> = covered(p, n).map(|i| codeword.bit(i - 1)).collect();
            aig.xor_many(&lits)
        })
        .collect();
    // Corrected data bit: flip when the syndrome equals the position.
    let mut corrected = Vec::with_capacity(data_bits);
    for pos in 1..=n {
        let Some(_d) = map[pos] else { continue };
        let matches: Vec<Lit> = (0..r)
            .map(|p| {
                let bit = syndrome[p];
                if pos & (1 << p) != 0 {
                    bit
                } else {
                    bit.not()
                }
            })
            .collect();
        let is_error_here = aig.and_many(&matches);
        corrected.push(aig.xor(codeword.bit(pos - 1), is_error_here));
    }
    Word(corrected)
}

/// Hamming **encoder**: produces the parity bits for a data word.
pub fn sec_encoder(aig: &mut Aig, data: &Word) -> Word {
    let (r, map) = layout(data.len());
    let n = data.len() + r;
    let parities: Vec<Lit> = (0..r)
        .map(|p| {
            let lits: Vec<Lit> = covered(p, n)
                .filter_map(|i| map[i].map(|d| data.bit(d)))
                .collect();
            aig.xor_many(&lits)
        })
        .collect();
    Word(parities)
}

/// The C1355-class benchmark: 32-bit SEC decoder.
pub fn sec_circuit(data_bits: usize) -> Aig {
    let mut aig = Aig::new();
    let n = data_bits + parity_bits(data_bits);
    let codeword = Word::inputs(&mut aig, n);
    let corrected = sec_decoder(&mut aig, &codeword, data_bits);
    corrected.output(&mut aig);
    aig
}

/// The C1908-class benchmark: 16-bit SEC/DED decoder (corrects single
/// errors, flags double errors via the overall parity).
pub fn sec_ded_circuit(data_bits: usize) -> Aig {
    let mut aig = Aig::new();
    let r = parity_bits(data_bits);
    let n = data_bits + r;
    // Codeword plus the extended overall-parity bit.
    let codeword = Word::inputs(&mut aig, n);
    let overall_in = aig.input();
    let corrected = sec_decoder(&mut aig, &codeword, data_bits);
    // Double-error detect: syndrome non-zero while overall parity matches.
    let all_bits: Vec<Lit> = codeword.0.clone();
    let recomputed_overall = aig.xor_many(&all_bits);
    let parity_ok = aig.xnor(recomputed_overall, overall_in);
    // Syndrome non-zero ⇔ some correction fired or parity mismatch; use
    // recomputed syndrome directly.
    let syndrome_bits: Vec<Lit> = (0..r)
        .map(|p| {
            let lits: Vec<Lit> = (1..=n)
                .filter(|i| i & (1 << p) != 0)
                .map(|i| codeword.bit(i - 1))
                .collect();
            aig.xor_many(&lits)
        })
        .collect();
    let syndrome_nonzero = aig.or_many(&syndrome_bits);
    let double_error = aig.and(syndrome_nonzero, parity_ok);
    corrected.output(&mut aig);
    aig.output(double_error);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::sim::evaluate;

    /// Encodes data into a full codeword (software reference).
    fn encode_sw(data: u64, data_bits: usize) -> Vec<bool> {
        let (r, map) = layout(data_bits);
        let n = data_bits + r;
        let mut code = vec![false; n + 1];
        for (pos, d) in map.iter().enumerate() {
            if let Some(d) = d {
                code[pos] = (data >> d) & 1 == 1;
            }
        }
        for p in 0..r {
            let parity = covered(p, n)
                .filter(|&i| !i.is_power_of_two())
                .fold(false, |acc, i| acc ^ code[i]);
            code[1 << p] = parity;
        }
        code[1..].to_vec()
    }

    #[test]
    fn parity_bit_counts() {
        assert_eq!(parity_bits(4), 3); // Hamming(7,4)
        assert_eq!(parity_bits(11), 4); // Hamming(15,11)
        assert_eq!(parity_bits(16), 5);
        assert_eq!(parity_bits(32), 6);
    }

    #[test]
    fn decoder_passes_clean_codewords() {
        let aig = sec_circuit(8);
        for data in [0u64, 0x5A, 0xFF, 0x13] {
            let code = encode_sw(data, 8);
            let out = evaluate(&aig, &code);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
            assert_eq!(got, data, "clean decode of {data:#x}");
        }
    }

    #[test]
    fn decoder_corrects_any_single_error() {
        let aig = sec_circuit(8);
        let data = 0xA7u64;
        let clean = encode_sw(data, 8);
        for flip in 0..clean.len() {
            let mut corrupted = clean.clone();
            corrupted[flip] = !corrupted[flip];
            let out = evaluate(&aig, &corrupted);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
            assert_eq!(got, data, "flip at position {flip}");
        }
    }

    #[test]
    fn sec_ded_flags_double_errors() {
        let data_bits = 8;
        let aig = sec_ded_circuit(data_bits);
        let data = 0x3Cu64;
        let clean = encode_sw(data, data_bits);
        let overall = clean.iter().fold(false, |a, &b| a ^ b);
        // Clean word: no double-error flag.
        let mut inputs = clean.clone();
        inputs.push(overall);
        let out = evaluate(&aig, &inputs);
        assert!(!out[data_bits], "clean word must not flag");
        // Two flips: flag must raise.
        let mut corrupted = clean.clone();
        corrupted[1] = !corrupted[1];
        corrupted[5] = !corrupted[5];
        let mut inputs = corrupted;
        inputs.push(overall);
        let out = evaluate(&aig, &inputs);
        assert!(out[data_bits], "double error must flag");
    }

    #[test]
    fn benchmark_sizes() {
        let c1355 = sec_circuit(32);
        assert_eq!(c1355.input_count(), 38);
        assert_eq!(c1355.output_count(), 32);
        let c1908 = sec_ded_circuit(16);
        assert_eq!(c1908.input_count(), 22);
        assert_eq!(c1908.output_count(), 17);
    }
}
