//! Parameterized ALU-with-control generators — the C2670/C3540/C5315/
//! C7552/dalu stand-ins.

use crate::words::{
    any, bitwise, equal, less_than, mux_word, parity, ripple_add, ripple_sub, select, shift_left,
    Word,
};
use aig::{Aig, Lit};

/// Builds an ALU datapath: eight operations selected by a 3-bit opcode.
///
/// Operations: ADD, SUB, AND, OR, XOR, NOR, shift-left-1, pass-B-muxed.
/// Returns the result word plus (zero, carry, parity) flags.
pub fn alu_core(aig: &mut Aig, a: &Word, b: &Word, op: &Word, cin: Lit) -> (Word, Vec<Lit>) {
    assert_eq!(op.len(), 3, "opcode is three bits");
    let (add, carry_add) = ripple_add(aig, a, b, cin);
    let (sub, carry_sub) = ripple_sub(aig, a, b);
    let and = bitwise(aig, a, b, |g, x, y| g.and(x, y));
    let or = bitwise(aig, a, b, |g, x, y| g.or(x, y));
    let xor = bitwise(aig, a, b, |g, x, y| g.xor(x, y));
    let nor = bitwise(aig, a, b, |g, x, y| g.or(x, y).not());
    let shl = shift_left(a, 1);
    let pass = mux_word(aig, cin, b, a);
    let result = select(aig, op, &[add, sub, and, or, xor, nor, shl, pass]);
    let zero = any(aig, &result).not();
    let carry = aig.mux(op.bit(0), carry_sub, carry_add);
    let par = parity(aig, &result);
    (result, vec![zero, carry, par])
}

/// ALU-and-control benchmark: the datapath plus a control block
/// (comparators, decode, condition logic) proportional to the width.
pub fn alu_control_circuit(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = Word::inputs(&mut aig, width);
    let b = Word::inputs(&mut aig, width);
    let op = Word::inputs(&mut aig, 3);
    let cin = aig.input();
    let (result, flags) = alu_core(&mut aig, &a, &b, &op, cin);
    result.output(&mut aig);
    for f in flags {
        aig.output(f);
    }
    // Control section: comparisons and decoded conditions.
    let eq = equal(&mut aig, &a, &b);
    let lt = less_than(&mut aig, &a, &b);
    aig.output(eq);
    aig.output(lt);
    // Branch-condition decode: cond[i] = f(eq, lt, op bits).
    for i in 0..4usize {
        let x = if i & 1 == 1 { eq } else { eq.not() };
        let y = if i & 2 == 2 { lt } else { lt.not() };
        let t1 = aig.and(x, y);
        let cond = aig.mux(op.bit(i % 3), t1, x);
        aig.output(cond);
    }
    aig
}

/// ALU-and-selector benchmark (C5315 class): ALU plus a bank selector
/// choosing among four rotated/masked views of the result.
pub fn alu_selector_circuit(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = Word::inputs(&mut aig, width);
    let b = Word::inputs(&mut aig, width);
    let op = Word::inputs(&mut aig, 3);
    let sel = Word::inputs(&mut aig, 2);
    let cin = aig.input();
    let (result, flags) = alu_core(&mut aig, &a, &b, &op, cin);
    let masked = bitwise(&mut aig, &result, &a, |g, x, y| g.and(x, y));
    let flipped = Word(result.0.iter().map(|l| l.not()).collect());
    let shifted = shift_left(&result, 2);
    let view = select(&mut aig, &sel, &[result, masked, flipped, shifted]);
    view.output(&mut aig);
    for f in flags {
        aig.output(f);
    }
    aig
}

/// Dedicated ALU (the MCNC `dalu` class): add/sub-centric with zero-detect
/// per nibble and saturation-style condition outputs.
pub fn dedicated_alu_circuit(width: usize) -> Aig {
    let mut aig = Aig::new();
    let a = Word::inputs(&mut aig, width);
    let b = Word::inputs(&mut aig, width);
    let mode = aig.input(); // 0 = add, 1 = sub
    let (add, c_add) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
    let (sub, c_sub) = ripple_sub(&mut aig, &a, &b);
    let result = mux_word(&mut aig, mode, &sub, &add);
    result.output(&mut aig);
    let carry = aig.mux(mode, c_sub, c_add);
    aig.output(carry);
    // Per-nibble zero detectors (control-flavoured outputs).
    for chunk in result.0.chunks(4) {
        let nz = aig.or_many(chunk);
        aig.output(nz.not());
    }
    // Sign comparison network.
    let lt = less_than(&mut aig, &a, &b);
    let eq = equal(&mut aig, &a, &b);
    aig.output(lt);
    aig.output(eq);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::sim::evaluate;

    fn encode(width: usize, a: u64, b: u64, op: u64, cin: bool) -> Vec<bool> {
        let mut v = Vec::new();
        for i in 0..width {
            v.push((a >> i) & 1 == 1);
        }
        for i in 0..width {
            v.push((b >> i) & 1 == 1);
        }
        for i in 0..3 {
            v.push((op >> i) & 1 == 1);
        }
        v.push(cin);
        v
    }

    fn word_value(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn alu_operations_are_correct() {
        let width = 6;
        let aig = alu_control_circuit(width);
        let mask = (1u64 << width) - 1;
        let cases = [(13u64, 27u64), (0, 0), (mask, 1), (42, 42)];
        for &(a, b) in &cases {
            for op in 0..8u64 {
                let out = evaluate(&aig, &encode(width, a, b, op, false));
                let result = word_value(&out[..width]);
                let expected = match op {
                    0 => (a + b) & mask,
                    1 => a.wrapping_sub(b) & mask,
                    2 => a & b,
                    3 => a | b,
                    4 => a ^ b,
                    5 => !(a | b) & mask,
                    6 => (a << 1) & mask,
                    _ => a, // pass with cin = 0 selects a
                };
                assert_eq!(result, expected, "op {op} on {a},{b}");
                // Zero flag.
                assert_eq!(out[width], result == 0, "zero flag op {op} {a},{b}");
                // Parity flag.
                assert_eq!(
                    out[width + 2],
                    result.count_ones() % 2 == 1,
                    "parity flag op {op} {a},{b}"
                );
            }
        }
    }

    #[test]
    fn control_comparators() {
        let width = 6;
        let aig = alu_control_circuit(width);
        for (a, b) in [(5u64, 9u64), (9, 5), (7, 7)] {
            let out = evaluate(&aig, &encode(width, a, b, 0, false));
            assert_eq!(out[width + 3], a == b, "eq {a},{b}");
            assert_eq!(out[width + 4], a < b, "lt {a},{b}");
        }
    }

    #[test]
    fn dedicated_alu_adds_and_subtracts() {
        let width = 8;
        let aig = dedicated_alu_circuit(width);
        let mask = (1u64 << width) - 1;
        for (a, b) in [(100u64, 55u64), (3, 200), (0, 0)] {
            for mode in [false, true] {
                let mut inputs = Vec::new();
                for i in 0..width {
                    inputs.push((a >> i) & 1 == 1);
                }
                for i in 0..width {
                    inputs.push((b >> i) & 1 == 1);
                }
                inputs.push(mode);
                let out = evaluate(&aig, &inputs);
                let result = word_value(&out[..width]);
                let expected = if mode {
                    a.wrapping_sub(b) & mask
                } else {
                    (a + b) & mask
                };
                assert_eq!(result, expected, "mode {mode} on {a},{b}");
            }
        }
    }

    #[test]
    fn selector_circuit_interface() {
        let aig = alu_selector_circuit(8);
        assert_eq!(aig.input_count(), 8 + 8 + 3 + 2 + 1);
        assert_eq!(aig.output_count(), 8 + 3);
        assert!(aig.and_count() > 100);
    }
}
