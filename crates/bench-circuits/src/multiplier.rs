//! Array multiplier — the C6288 stand-in (the paper's most XOR-rich
//! benchmark, with the largest generalized-library wins).

use crate::words::{full_adder, ripple_add, Word};
use aig::{Aig, Lit};

/// Builds an `n × n` carry-save array multiplier returning the `2n`-bit
/// product. Partial-product columns are reduced with full/half adders
/// (3:2 compression, the structure of the real C6288) and the final two
/// rows are merged with a ripple adder.
pub fn multiplier(aig: &mut Aig, a: &Word, b: &Word) -> Word {
    assert_eq!(a.len(), b.len(), "multiplier width mismatch");
    let n = a.len();
    let width = 2 * n;
    // Column-wise partial products.
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &bi) in b.0.iter().enumerate() {
        for (j, &aj) in a.0.iter().enumerate() {
            columns[i + j].push(aig.and(aj, bi));
        }
    }
    // Carry-save reduction: compress every column to ≤2 bits.
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<Lit>> = vec![Vec::new(); width];
        for (c, col) in columns.iter().enumerate() {
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, carry) = full_adder(aig, col[i], col[i + 1], col[i + 2]);
                next[c].push(s);
                if c + 1 < width {
                    next[c + 1].push(carry);
                }
                i += 3;
            }
            if col.len() - i == 2 {
                // Half adder.
                let s = aig.xor(col[i], col[i + 1]);
                let carry = aig.and(col[i], col[i + 1]);
                next[c].push(s);
                if c + 1 < width {
                    next[c + 1].push(carry);
                }
            } else if col.len() - i == 1 {
                next[c].push(col[i]);
            }
        }
        columns = next;
    }
    // Final carry-propagate addition of the two remaining rows.
    let row0 = Word(
        columns
            .iter()
            .map(|c| c.first().copied().unwrap_or(Lit::FALSE))
            .collect(),
    );
    let row1 = Word(
        columns
            .iter()
            .map(|c| c.get(1).copied().unwrap_or(Lit::FALSE))
            .collect(),
    );
    let (sum, _) = ripple_add(aig, &row0, &row1, Lit::FALSE);
    sum
}

/// The complete benchmark circuit: inputs, multiplier, product outputs.
pub fn multiplier_circuit(bits: usize) -> Aig {
    let mut aig = Aig::new();
    let a = Word::inputs(&mut aig, bits);
    let b = Word::inputs(&mut aig, bits);
    let p = multiplier(&mut aig, &a, &b);
    p.output(&mut aig);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::sim::evaluate;

    #[test]
    fn four_bit_products_are_exact() {
        let aig = multiplier_circuit(4);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push((y >> i) & 1 == 1);
                }
                let out = evaluate(&aig, &inputs);
                let got = out
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i));
                assert_eq!(got, x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn width_and_interface() {
        let aig = multiplier_circuit(8);
        assert_eq!(aig.input_count(), 16);
        assert_eq!(aig.output_count(), 16);
        assert!(aig.and_count() > 300, "8×8 array should be sizeable");
    }
}
