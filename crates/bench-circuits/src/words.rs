//! Word-level construction helpers over AIGs: the datapath building blocks
//! shared by all benchmark generators.

use aig::{Aig, Lit};

/// A little-endian vector of literals (bit 0 first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Word(pub Vec<Lit>);

impl Word {
    /// Allocates `bits` fresh primary inputs.
    pub fn inputs(aig: &mut Aig, bits: usize) -> Self {
        Word((0..bits).map(|_| aig.input()).collect())
    }

    /// A constant word.
    pub fn constant(value: u64, bits: usize) -> Self {
        Word(
            (0..bits)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect(),
        )
    }

    /// Width in bits.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Bit accessor.
    pub fn bit(&self, i: usize) -> Lit {
        self.0[i]
    }

    /// Registers every bit as a primary output.
    pub fn output(&self, aig: &mut Aig) {
        for &b in &self.0 {
            aig.output(b);
        }
    }
}

/// Full adder: returns (sum, carry).
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let c1 = aig.and(a, b);
    let c2 = aig.and(axb, cin);
    let cout = aig.or(c1, c2);
    (sum, cout)
}

/// Ripple-carry addition; returns (sum, carry-out).
///
/// # Panics
///
/// Panics if the widths differ.
pub fn ripple_add(aig: &mut Aig, a: &Word, b: &Word, cin: Lit) -> (Word, Lit) {
    assert_eq!(a.len(), b.len(), "adder width mismatch");
    let mut carry = cin;
    let mut bits = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, c) = full_adder(aig, a.bit(i), b.bit(i), carry);
        bits.push(s);
        carry = c;
    }
    (Word(bits), carry)
}

/// Two's-complement subtraction `a - b`; returns (difference, borrow-free
/// carry-out).
pub fn ripple_sub(aig: &mut Aig, a: &Word, b: &Word) -> (Word, Lit) {
    let nb = Word(b.0.iter().map(|l| l.not()).collect());
    ripple_add(aig, a, &nb, Lit::TRUE)
}

/// Bitwise map over two words.
pub fn bitwise(
    aig: &mut Aig,
    a: &Word,
    b: &Word,
    mut f: impl FnMut(&mut Aig, Lit, Lit) -> Lit,
) -> Word {
    assert_eq!(a.len(), b.len(), "bitwise width mismatch");
    Word(
        a.0.iter()
            .zip(b.0.iter())
            .map(|(&x, &y)| f(aig, x, y))
            .collect(),
    )
}

/// 2:1 word multiplexer: `sel ? t : e`.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &Word, e: &Word) -> Word {
    assert_eq!(t.len(), e.len(), "mux width mismatch");
    Word(
        t.0.iter()
            .zip(e.0.iter())
            .map(|(&x, &y)| aig.mux(sel, x, y))
            .collect(),
    )
}

/// Selects one of `options` by a binary select word (mux tree).
///
/// # Panics
///
/// Panics if `options` is empty or the select word is too narrow.
pub fn select(aig: &mut Aig, sel: &Word, options: &[Word]) -> Word {
    assert!(!options.is_empty(), "empty selector options");
    assert!(
        1usize << sel.len() >= options.len(),
        "select word too narrow"
    );
    let mut layer: Vec<Word> = options.to_vec();
    for &s in &sel.0 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(mux_word(aig, s, &pair[1], &pair[0]));
            } else {
                next.push(pair[0].clone());
            }
        }
        layer = next;
        if layer.len() == 1 {
            break;
        }
    }
    layer.swap_remove(0)
}

/// Equality comparator: 1 iff `a == b`.
pub fn equal(aig: &mut Aig, a: &Word, b: &Word) -> Lit {
    let diffs: Vec<Lit> =
        a.0.iter()
            .zip(b.0.iter())
            .map(|(&x, &y)| aig.xnor(x, y))
            .collect();
    aig.and_many(&diffs)
}

/// Unsigned less-than comparator: 1 iff `a < b`.
pub fn less_than(aig: &mut Aig, a: &Word, b: &Word) -> Lit {
    // a < b ⇔ borrow out of a - b.
    let (_, carry) = ripple_sub(aig, a, b);
    carry.not()
}

/// Parity (XOR-reduce) of a word.
pub fn parity(aig: &mut Aig, a: &Word) -> Lit {
    aig.xor_many(&a.0)
}

/// OR-reduce: 1 iff any bit set.
pub fn any(aig: &mut Aig, a: &Word) -> Lit {
    aig.or_many(&a.0)
}

/// Logical shift left by a constant, keeping width.
pub fn shift_left(a: &Word, by: usize) -> Word {
    let mut bits = vec![Lit::FALSE; by.min(a.len())];
    bits.extend(a.0.iter().take(a.len().saturating_sub(by)).copied());
    Word(bits)
}

/// Builds an arbitrary truth table over up to six literals (Shannon
/// expansion into muxes; structural hashing shares cofactors).
pub fn from_truth_table(aig: &mut Aig, tt: logic::TruthTable, inputs: &[Lit]) -> Lit {
    assert_eq!(inputs.len(), tt.n_vars(), "truth-table arity mismatch");
    build_tt(aig, tt, inputs, tt.n_vars())
}

fn build_tt(aig: &mut Aig, tt: logic::TruthTable, inputs: &[Lit], top: usize) -> Lit {
    if tt.is_zero() {
        return Lit::FALSE;
    }
    if tt.is_one() {
        return Lit::TRUE;
    }
    let var = (0..top)
        .rev()
        .find(|&v| tt.depends_on(v))
        .expect("non-constant");
    let hi = build_tt(aig, tt.cofactor1(var), inputs, var);
    let lo = build_tt(aig, tt.cofactor0(var), inputs, var);
    aig.mux(inputs[var], hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::sim::evaluate;

    fn eval_word(values: &[bool]) -> u64 {
        values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    #[test]
    fn adder_adds() {
        let mut aig = Aig::new();
        let a = Word::inputs(&mut aig, 4);
        let b = Word::inputs(&mut aig, 4);
        let (sum, carry) = ripple_add(&mut aig, &a, &b, Lit::FALSE);
        sum.output(&mut aig);
        aig.output(carry);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push((y >> i) & 1 == 1);
                }
                let out = evaluate(&aig, &inputs);
                let got = eval_word(&out[..4]) | ((out[4] as u64) << 4);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtractor_subtracts_mod_16() {
        let mut aig = Aig::new();
        let a = Word::inputs(&mut aig, 4);
        let b = Word::inputs(&mut aig, 4);
        let (diff, _) = ripple_sub(&mut aig, &a, &b);
        diff.output(&mut aig);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push((y >> i) & 1 == 1);
                }
                let out = evaluate(&aig, &inputs);
                assert_eq!(eval_word(&out), (x.wrapping_sub(y)) & 0xF, "{x}-{y}");
            }
        }
    }

    #[test]
    fn comparators() {
        let mut aig = Aig::new();
        let a = Word::inputs(&mut aig, 3);
        let b = Word::inputs(&mut aig, 3);
        let eq = equal(&mut aig, &a, &b);
        let lt = less_than(&mut aig, &a, &b);
        aig.output(eq);
        aig.output(lt);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push((y >> i) & 1 == 1);
                }
                let out = evaluate(&aig, &inputs);
                assert_eq!(out[0], x == y, "eq {x},{y}");
                assert_eq!(out[1], x < y, "lt {x},{y}");
            }
        }
    }

    #[test]
    fn selector_picks_option() {
        let mut aig = Aig::new();
        let options: Vec<Word> = (0..4).map(|_| Word::inputs(&mut aig, 2)).collect();
        let sel = Word::inputs(&mut aig, 2);
        let picked = select(&mut aig, &sel, &options);
        picked.output(&mut aig);
        // options values: o0=00,o1=01,o2=10,o3=11 patterns chosen per test.
        for s in 0..4usize {
            let mut inputs = vec![false; 10];
            // Give option k the value k.
            for k in 0..4 {
                inputs[2 * k] = k & 1 == 1;
                inputs[2 * k + 1] = k & 2 == 2;
            }
            inputs[8] = s & 1 == 1;
            inputs[9] = s & 2 == 2;
            let out = evaluate(&aig, &inputs);
            assert_eq!(eval_word(&out), s as u64, "select {s}");
        }
    }

    #[test]
    fn parity_and_any() {
        let mut aig = Aig::new();
        let a = Word::inputs(&mut aig, 5);
        let p = parity(&mut aig, &a);
        let o = any(&mut aig, &a);
        aig.output(p);
        aig.output(o);
        for x in 0..32u64 {
            let inputs: Vec<bool> = (0..5).map(|i| (x >> i) & 1 == 1).collect();
            let out = evaluate(&aig, &inputs);
            assert_eq!(out[0], x.count_ones() % 2 == 1, "parity {x}");
            assert_eq!(out[1], x != 0, "any {x}");
        }
    }

    #[test]
    fn truth_table_builder() {
        let mut aig = Aig::new();
        let inputs: Vec<Lit> = (0..4).map(|_| aig.input()).collect();
        let tt = logic::TruthTable::from_bits(4, 0x6996); // 4-bit parity
        let f = from_truth_table(&mut aig, tt, &inputs);
        aig.output(f);
        for m in 0..16usize {
            let bits: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(evaluate(&aig, &bits)[0], tt.eval_index(m), "minterm {m}");
        }
    }

    #[test]
    fn shift_left_keeps_width() {
        let w = Word::constant(0b0110, 4);
        let s = shift_left(&w, 1);
        assert_eq!(s.len(), 4);
        assert_eq!(s.bit(0), Lit::FALSE);
        assert_eq!(s.bit(1), w.bit(0));
    }
}
