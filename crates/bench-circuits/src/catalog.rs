//! The Table-1 benchmark catalog: the 12 circuits, in the paper's row
//! order, with their functional descriptions.

use crate::alu::{alu_control_circuit, alu_selector_circuit, dedicated_alu_circuit};
use crate::des::des_circuit;
use crate::ecc::{sec_circuit, sec_ded_circuit};
use crate::logicblocks::{i10_circuit, i8_circuit, t481_circuit};
use crate::multiplier::multiplier_circuit;
use aig::Aig;

/// A named benchmark with its paper row metadata.
#[derive(Debug)]
pub struct Benchmark {
    /// Paper circuit name (e.g. `C6288`).
    pub name: &'static str,
    /// The paper's "Function" column.
    pub function: &'static str,
    /// The generated stand-in network.
    pub aig: Aig,
}

/// Builds all 12 Table-1 benchmarks in row order.
///
/// # Example
///
/// ```
/// let rows = bench_circuits::table1_benchmarks();
/// assert_eq!(rows.len(), 12);
/// assert_eq!(rows[5].name, "C6288");
/// ```
pub fn table1_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "C2670",
            function: "ALU and control",
            aig: alu_control_circuit(16),
        },
        Benchmark {
            name: "C1908",
            function: "Error correcting",
            aig: sec_ded_circuit(16),
        },
        Benchmark {
            name: "C3540",
            function: "ALU and control",
            aig: alu_control_circuit(32),
        },
        Benchmark {
            name: "dalu",
            function: "Dedicated ALU",
            aig: dedicated_alu_circuit(64),
        },
        Benchmark {
            name: "C7552",
            function: "ALU and control",
            aig: alu_control_circuit(44),
        },
        Benchmark {
            name: "C6288",
            function: "Multiplier",
            aig: multiplier_circuit(16),
        },
        Benchmark {
            name: "C5315",
            function: "ALU and selector",
            aig: alu_selector_circuit(36),
        },
        Benchmark {
            name: "des",
            function: "Data encryption",
            aig: des_circuit(),
        },
        Benchmark {
            name: "i10",
            function: "Logic",
            aig: i10_circuit(),
        },
        Benchmark {
            name: "t481",
            function: "Logic",
            aig: t481_circuit(),
        },
        Benchmark {
            name: "i8",
            function: "Logic",
            aig: i8_circuit(),
        },
        Benchmark {
            name: "C1355",
            function: "Error correcting",
            aig: sec_circuit(32),
        },
    ]
}

/// Builds a single benchmark by its paper name.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    table1_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_in_paper_order() {
        let rows = table1_benchmarks();
        let names: Vec<&str> = rows.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "C2670", "C1908", "C3540", "dalu", "C7552", "C6288", "C5315", "des", "i10", "t481",
                "i8", "C1355"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        let b = benchmark_by_name("C6288").expect("C6288 exists");
        assert_eq!(b.function, "Multiplier");
        assert!(benchmark_by_name("C9999").is_none());
    }

    #[test]
    fn all_benchmarks_are_nontrivial() {
        for b in table1_benchmarks() {
            assert!(b.aig.and_count() > 50, "{} too small", b.name);
            assert!(b.aig.output_count() > 0, "{} has no outputs", b.name);
        }
    }

    #[test]
    fn xor_rich_rows_are_the_multiplier_and_ecc() {
        // Sanity: the multiplier dwarfs the others (as in the paper).
        let rows = table1_benchmarks();
        let sizes: Vec<(&str, usize)> = rows.iter().map(|b| (b.name, b.aig.and_count())).collect();
        let c6288 = sizes.iter().find(|(n, _)| *n == "C6288").expect("row").1;
        for (name, size) in &sizes {
            if *name != "C6288" && *name != "des" {
                assert!(
                    c6288 > *size,
                    "C6288 ({c6288}) should exceed {name} ({size})"
                );
            }
        }
    }
}
