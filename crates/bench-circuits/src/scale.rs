//! Deterministic synthetic workloads at industrial scale (ROADMAP item
//! 2): wide array multipliers, deep adder/XOR trees, and seeded random
//! k-regular AIGs, parameterized by a target AND count (10k / 100k / 1M).
//!
//! The paper catalog tops out near 2.5k ANDs per circuit; these
//! generators stress the synthesis hot loops — cut enumeration, rewrite
//! scoring, SAT-sweep signature propagation — at EPFL/IWLS scale. Every
//! generator is a pure function of its parameters (the random generator
//! is an explicitly seeded xorshift), so the `scale` bin, the
//! determinism tests, and CI all see byte-identical circuits.

use crate::multiplier::multiplier_circuit;
use crate::words::{bitwise, ripple_add, Word};
use aig::{Aig, Lit};

/// One named scale workload: the unit the `scale` bin iterates over.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSpec {
    /// Generator family name (stable across sizes; used in JSON keys).
    pub family: &'static str,
    /// Requested AND count; the generated circuit lands within roughly
    /// ±20% (generators round to their natural structural granularity).
    pub target_ands: usize,
}

/// The standard workload set at one target size: one circuit per
/// generator family.
pub fn workloads(target_ands: usize) -> Vec<(ScaleSpec, Aig)> {
    vec![
        (
            ScaleSpec {
                family: "mult",
                target_ands,
            },
            wide_multiplier(target_ands),
        ),
        (
            ScaleSpec {
                family: "tree",
                target_ands,
            },
            adder_xor_tree(target_ands),
        ),
        (
            ScaleSpec {
                family: "rand",
                target_ands,
            },
            random_kregular(target_ands, 0x5CA1_AB1E),
        ),
    ]
}

/// A wide `n × n` carry-save array multiplier sized to roughly
/// `target_ands` AND nodes (the XOR-rich datapath workload; C6288 scaled
/// up). The array costs ≈ 10.2·n² ANDs, so `n` is derived by inverting
/// that and nudged up until the target is met.
pub fn wide_multiplier(target_ands: usize) -> Aig {
    let mut n = (((target_ands as f64) / 10.2).sqrt().round() as usize).max(2);
    loop {
        let aig = multiplier_circuit(n);
        if aig.and_count() >= target_ands || n > 4 * target_ands {
            return aig;
        }
        n += (n / 8).max(1);
    }
}

/// A deep adder/XOR tree sized to roughly `target_ands` AND nodes: many
/// 32-bit input words combined pairwise in a balanced tree whose levels
/// alternate ripple-carry addition and bitwise XOR. The ripple chains
/// make it deep (long level frontiers), the XOR levels keep it
/// XOR-dense — the shape that stresses level-staged parallel loops.
pub fn adder_xor_tree(target_ands: usize) -> Aig {
    const WIDTH: usize = 32;
    // A tree of L leaves has L-1 combining steps averaging ≈ 7·WIDTH
    // ANDs each (ripple-add levels at 9w, XOR levels at 3w, add levels
    // dominating the wide early rows).
    let leaves = (target_ands / (7 * WIDTH)).max(2);
    let mut aig = Aig::new();
    let mut row: Vec<Word> = (0..leaves).map(|_| Word::inputs(&mut aig, WIDTH)).collect();
    let mut level = 0usize;
    while row.len() > 1 {
        let mut next = Vec::with_capacity(row.len() / 2);
        for pair in row.chunks(2) {
            let combined = if pair.len() == 1 {
                pair[0].clone()
            } else if level.is_multiple_of(2) {
                ripple_add(&mut aig, &pair[0], &pair[1], Lit::FALSE).0
            } else {
                bitwise(&mut aig, &pair[0], &pair[1], |g, x, y| g.xor(x, y))
            };
            next.push(combined);
        }
        row = next;
        level += 1;
    }
    row[0].output(&mut aig);
    aig
}

/// A seeded random 2-regular AIG with `target_ands` AND nodes: every new
/// node conjoins two randomly complemented fanins drawn from a sliding
/// window of recent nodes (keeping the graph deep rather than flat), and
/// every node left dangling at the end becomes a primary output so
/// cleanup preserves the full size. Each output is the dangling root
/// XORed with a dedicated guard input the random logic never touches, so
/// every output semantically depends on the guard and no sound
/// optimization can reduce one to a constant (which the mapper would
/// reject for lack of tie cells). The construction goes through
/// [`Aig::and`], so the result is strashed and constant-folded like every
/// engine-built network.
///
/// The primary-input count (and with it the fanin window) grows with the
/// target: a fixed support caps the network's semantic content, so past
/// a point every larger target synthesized to the *same* irredundant
/// network and the workload stopped scaling. With `64 + target/128`
/// inputs the post-synthesis size keeps growing with N.
pub fn random_kregular(target_ands: usize, seed: u64) -> Aig {
    let inputs = 64 + target_ands / 128;
    let window = inputs.max(256);
    let mut rng = XorShift64::new(seed);
    let mut aig = Aig::new();
    let pool: Vec<Lit> = (0..inputs).map(|_| aig.input()).collect();
    let guard = aig.input();
    let mut recent: Vec<Lit> = pool.clone();
    while aig.and_count() < target_ands {
        let pick = |rng: &mut XorShift64, recent: &[Lit]| {
            let span = recent.len().min(window);
            let base = recent[recent.len() - span + (rng.next() as usize % span)];
            if rng.next() & 1 == 1 {
                base.not()
            } else {
                base
            }
        };
        let a = pick(&mut rng, &recent);
        let b = pick(&mut rng, &recent);
        let before = aig.len();
        let lit = aig.and(a, b);
        // Strash hits and constant folds don't grow the graph; only a
        // structurally new node joins the fanin window.
        if aig.len() > before {
            recent.push(lit);
        }
    }
    // Keep everything alive: dangling AND roots become outputs,
    // guard-XORed so none is semantically constant.
    let dangling: Vec<u32> = aig
        .fanout_counts()
        .iter()
        .enumerate()
        .skip(1 + inputs + 1)
        .filter(|&(_, &r)| r == 0)
        .map(|(i, _)| i as u32)
        .collect();
    for n in dangling {
        let guarded = aig.xor(Lit::new(n, false), guard);
        aig.output(guarded);
    }
    aig
}

/// The classic xorshift64 generator — deterministic, dependency-free,
/// and unrelated to the simulation rng so workloads and signatures never
/// correlate.
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_hits_its_target_band() {
        let aig = wide_multiplier(10_000);
        assert!(aig.and_count() >= 10_000);
        assert!(aig.and_count() < 20_000, "got {}", aig.and_count());
    }

    #[test]
    fn tree_is_deep_and_near_target() {
        let aig = adder_xor_tree(10_000);
        let ands = aig.and_count();
        assert!((5_000..30_000).contains(&ands), "got {ands}");
        assert!(aig.depth() > 64, "ripple chains must stack up");
    }

    #[test]
    fn random_aig_is_seed_deterministic_and_sized() {
        let a = random_kregular(10_000, 7);
        let b = random_kregular(10_000, 7);
        assert!(a.same_structure(&b), "same seed, same graph");
        assert!(a.and_count() >= 10_000);
        let c = random_kregular(10_000, 8);
        assert!(!c.same_structure(&a), "different seed, different graph");
    }

    #[test]
    fn random_aig_support_grows_with_target() {
        // A fixed support caps semantic content (the 50k and 100k
        // workloads used to synthesize to the identical network); the
        // input pool must widen as the target grows.
        let small = random_kregular(10_000, 7);
        let big = random_kregular(100_000, 7);
        assert!(big.input_nodes().len() > small.input_nodes().len());
    }

    #[test]
    fn random_aig_survives_cleanup_whole() {
        let a = random_kregular(5_000, 3);
        let cleaned = a.cleanup();
        assert_eq!(cleaned.and_count(), a.and_count());
    }

    #[test]
    fn workload_set_covers_all_families() {
        let set = workloads(1_000);
        let names: Vec<&str> = set.iter().map(|(s, _)| s.family).collect();
        assert_eq!(names, ["mult", "tree", "rand"]);
        for (spec, aig) in &set {
            assert!(
                aig.and_count() >= spec.target_ands / 2,
                "{} too small: {}",
                spec.family,
                aig.and_count()
            );
        }
    }
}
