//! Exports mapped netlists and cell schematics in interchange formats:
//! structural Verilog for the mapped circuit, a genlib view of the
//! characterized library, and a SPICE subcircuit of the paper's flagship
//! GNAND2 cell (Fig. 3 as text).
//!
//! ```text
//! cargo run --release --example netlist_export
//! ```

use ambipolar::engine;
use charlib::gate_to_spice;
use charlib::genlib::gate_to_genlib;
use gate_lib::GateFamily;
use techmap::{cell_histogram, map_aig_with_cache, to_structural_verilog, MapConfig};

fn main() {
    let bench = bench_circuits::benchmark_by_name("C1355").expect("C1355 exists");
    let synthesized = aig::synthesize(&bench.aig);
    let library = engine::library(GateFamily::CntfetGeneralized);
    let mapped = map_aig_with_cache(
        &synthesized,
        library,
        engine::match_cache(GateFamily::CntfetGeneralized),
        &MapConfig::default(),
    )
    .expect("mapping succeeds");

    println!(
        "=== cell histogram of {} mapped with the generalized library ===",
        bench.name
    );
    for (name, count) in cell_histogram(&mapped, library) {
        println!("  {count:>5} × {name}");
    }

    println!("\n=== structural Verilog (first 14 lines) ===");
    let verilog = to_structural_verilog(&mapped, library, "c1355_gen");
    for line in verilog.lines().take(14) {
        println!("{line}");
    }
    println!("  … ({} lines total)", verilog.lines().count());

    let gnand = library.find("GNAND2").expect("GNAND2 exists");
    println!("\n=== genlib line ===\n{}", gate_to_genlib(gnand));
    println!(
        "\n=== SPICE subcircuit of GNAND2 (Fig. 3) ===\n{}",
        gate_to_spice(&gnand.gate)
    );
}
