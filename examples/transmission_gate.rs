//! The Fig. 2 study: a CNTFET transmission gate passes either rail without
//! degradation for every conducting input configuration (`A ⊕ B = 1`),
//! plus the Fig. 4 leakage asymmetry between parallel and series
//! off-transistor patterns.
//!
//! ```text
//! cargo run --release --example transmission_gate
//! ```

use ambipolar::experiments::fig4_study;
use device::{AmbipolarCntfet, PolarityConfig, TechParams};
use spice_lite::{Circuit, GROUND};

fn main() {
    let tech = TechParams::cntfet_32nm();
    let dev = AmbipolarCntfet::new(&tech);

    println!("Fig. 2 — transmission-gate transfer (V_X driven through the TG):");
    println!(
        "{:<8} {:<8} {:<12} {:>12} {:>14}",
        "A", "B", "drive", "V_out", "verdict"
    );
    // TG: device 1 has polarity gate A, gate B; device 2 the complements.
    for (a, b) in [(true, false), (false, true), (true, true), (false, false)] {
        for drive_high in [true, false] {
            let v = |bit: bool| if bit { tech.vdd } else { 0.0 };
            let mut ckt = Circuit::new();
            let vin = ckt.node("vin");
            let out = ckt.node("out");
            ckt.add_vsource("VIN", vin, GROUND, v(drive_high));
            let pg_a = ckt.node("pg_a");
            let pg_an = ckt.node("pg_an");
            let g_b = ckt.node("g_b");
            let g_bn = ckt.node("g_bn");
            ckt.add_vsource("VA", pg_a, GROUND, v(a));
            ckt.add_vsource("VAN", pg_an, GROUND, v(!a));
            ckt.add_vsource("VB", g_b, GROUND, v(b));
            ckt.add_vsource("VBN", g_bn, GROUND, v(!b));
            // Device 1: polarity per A, conventional gate B.
            let m1 = dev.configured(if a {
                PolarityConfig::PType
            } else {
                PolarityConfig::NType
            });
            let m2 = dev.configured(if !a {
                PolarityConfig::PType
            } else {
                PolarityConfig::NType
            });
            let _ = (pg_a, pg_an); // polarity encoded in the configured model
            ckt.add_transistor("M1", m1, out, g_b, vin);
            ckt.add_transistor("M2", m2, out, g_bn, vin);
            // Weak load representing the next stage input.
            ckt.add_resistor("RL", out, GROUND, 1.0e9);
            let op = ckt.solve_dc().expect("TG circuit converges");
            let vout = op.voltage(out);
            let conducting = a ^ b;
            let verdict = if conducting {
                let target = v(drive_high);
                if (vout - target).abs() < 0.05 * tech.vdd {
                    "good transmission"
                } else {
                    "DEGRADED"
                }
            } else {
                "blocking"
            };
            println!(
                "{:<8} {:<8} {:<12} {:>10.3} V {:>16}",
                u8::from(a),
                u8::from(b),
                if drive_high { "V_DD" } else { "V_SS" },
                vout,
                verdict
            );
        }
    }

    println!("\nFig. 4 — off-pattern leakage asymmetry:");
    for tech in [TechParams::cmos_32nm(), TechParams::cntfet_32nm()] {
        println!("  {}", fig4_study(&tech));
    }
}
