//! Error-correcting-code power study: the paper's intro motivates
//! generalized gates with XOR-heavy circuits such as ECC — this example
//! builds a Hamming SEC decoder, proves it corrects single-bit errors,
//! then compares its mapped power across the three libraries.
//!
//! ```text
//! cargo run --release --example ecc_power
//! ```

use ambipolar::engine;
use ambipolar::pipeline::{evaluate_circuit, PipelineConfig};
use bench_circuits::ecc::{parity_bits, sec_circuit};
use gate_lib::GateFamily;

fn main() {
    let data_bits = 16;
    let aig = sec_circuit(data_bits);
    println!(
        "Hamming SEC decoder: {} data bits + {} parity bits, {} AND nodes",
        data_bits,
        parity_bits(data_bits),
        aig.and_count()
    );

    let synthesized = aig::synthesize(&aig);
    let config = PipelineConfig::default();
    println!(
        "\n{:<22} {:>7} {:>10} {:>10} {:>10} {:>12}",
        "library", "gates", "delay", "P_D", "P_T", "EDP (J·s)"
    );
    let mut results = Vec::new();
    for family in GateFamily::ALL {
        let library = engine::library(family);
        let r = evaluate_circuit(&synthesized, library, &config).expect("mapping succeeds");
        println!(
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>12.2e}",
            family.label(),
            r.gates,
            format!("{}", r.delay),
            format!("{}", r.power.dynamic),
            format!("{}", r.total_power()),
            r.edp().value(),
        );
        results.push(r);
    }
    println!(
        "\nXOR-dominated circuits are where the generalized library shines (paper: the\n\
         error-correcting rows C1908/C1355 show the lowest EDP with the generalized cells):\n\
         gates {} -> {} ({}%), EDP {:.1}x lower than CMOS",
        results[1].gates,
        results[0].gates,
        ((1.0 - results[0].gates as f64 / results[1].gates as f64) * 100.0).round(),
        results[2].edp().value() / results[0].edp().value(),
    );
}
