//! Maps an 8×8 multiplier (a small C6288) with all three libraries and
//! compares gates, delay, power and EDP — the paper's §4 flow on the
//! workload its introduction motivates (XOR-rich arithmetic).
//!
//! ```text
//! cargo run --release --example multiplier_mapping
//! ```

use ambipolar::engine;
use ambipolar::pipeline::{evaluate_circuit, PipelineConfig};
use bench_circuits::multiplier::multiplier_circuit;
use gate_lib::GateFamily;
use techmap::{map_aig_with_cache, verify_mapping, MapConfig};

fn main() {
    let aig = multiplier_circuit(8);
    println!(
        "8×8 carry-save multiplier: {} inputs, {} outputs, {} AND nodes",
        aig.input_count(),
        aig.output_count(),
        aig.and_count()
    );
    let synthesized = aig::synthesize(&aig);
    println!(
        "after synthesis: {} AND nodes, depth {}\n",
        synthesized.and_count(),
        synthesized.depth()
    );

    let config = PipelineConfig::default();
    println!(
        "{:<22} {:>7} {:>12} {:>10} {:>10} {:>14}",
        "library", "gates", "transistors", "delay", "P_T", "EDP"
    );
    let mut rows = Vec::new();
    for family in GateFamily::ALL {
        let library = engine::library(family);
        // Functional check: the mapped netlist is SAT-proven against the
        // AIG (a failed proof would print the counterexample pattern).
        let mapped = map_aig_with_cache(
            &synthesized,
            library,
            engine::match_cache(family),
            &MapConfig::default(),
        )
        .expect("mapping succeeds");
        verify_mapping(&synthesized, &mapped, library).unwrap_or_else(|e| panic!("{family}: {e}"));
        let r = evaluate_circuit(&synthesized, library, &config).expect("mapping succeeds");
        println!(
            "{:<22} {:>7} {:>12} {:>10} {:>10} {:>11.2e}",
            family.label(),
            r.gates,
            r.transistors,
            format!("{}", r.delay),
            format!("{}", r.total_power()),
            r.edp().value(),
        );
        rows.push(r);
    }
    let edp_ratio = rows[2].edp().value() / rows[0].edp().value();
    println!(
        "\nEDP: CMOS / generalized-CNTFET = {edp_ratio:.1}x  (paper reports 20x on average, 31x for C6288)"
    );
}
