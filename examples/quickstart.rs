//! Quickstart: characterize an ambipolar gate and read its power breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the paper's §3 methodology on a single cell: the generalized
//! NAND `!((A⊕C)&(B⊕D))` of Fig. 3 — activity factor, input-vector-
//! dependent leakage via I_off pattern classification, and the four power
//! components of eq. (1)–(5).

use ambipolar::engine;
use charlib::topology::{gate_off_patterns, input_vectors};
use gate_lib::GateFamily;

fn main() {
    // Characterize the full 46-cell generalized ambipolar library
    // (Fig. 5 flow: topology analysis → pattern classification → DC
    // leakage simulation → averaging), via the once-per-process cache.
    let library = engine::library(GateFamily::CntfetGeneralized);
    println!(
        "characterized {} cells with {} leakage simulations\n",
        library.gates.len(),
        library.simulated_patterns
    );

    let gnand = library.find("GNAND2").expect("GNAND2 is in the library");
    println!("cell: {}", gnand.gate);
    println!("activity factor α = {}", gnand.alpha);
    println!(
        "input capacitance per pin: {:?} aF",
        gnand
            .input_caps
            .iter()
            .map(|c| (c * 1e18 * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // Input-vector-dependent leakage: print the off-pattern and I_off for
    // a few vectors.
    println!("\ninput-vector dependence of leakage (§3.2):");
    for v in input_vectors(gnand.gate.n_inputs).take(4) {
        let patterns = gate_off_patterns(&gnand.gate, &v);
        let idx = v
            .iter()
            .enumerate()
            .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
        println!(
            "  {:?} -> pattern {}  I_off = {}",
            v.iter().map(|&b| u8::from(b)).collect::<Vec<_>>(),
            patterns[0],
            device::units::eng(gnand.ioff_for_state(idx), "A"),
        );
    }

    // The eq. (1)–(5) power breakdown at 1 GHz, FO3.
    let p = gnand.power_summary();
    println!("\npower breakdown at 1 GHz, V_DD = 0.9 V, fanout 3:");
    println!("  P_D  = {}", p.dynamic);
    println!("  P_SC = {}", p.short_circuit);
    println!("  P_S  = {}", p.static_sub);
    println!("  P_G  = {}", p.gate_leak);
    println!("  P_T  = {}", p.total());
    println!("  FO3 delay = {}", gnand.fo3_delay());

    // Compare with the CMOS XOR-based realization of the same function:
    // 2 × XOR2 + 1 × NAND2.
    let cmos = engine::library(GateFamily::Cmos);
    let xor = cmos.find("XOR2").expect("XOR2");
    let nand = cmos.find("NAND2").expect("NAND2");
    let cmos_total =
        2.0 * xor.power_summary().total().value() + nand.power_summary().total().value();
    println!(
        "\nsame function in CMOS (2×XOR2 + NAND2): {} — {:.0}% more than the single GNAND2",
        device::units::eng(cmos_total, "W"),
        (cmos_total / p.total().value() - 1.0) * 100.0
    );
}
